//! Property-based equivalence of the execution modes.
//!
//! The sharded event core's whole contract is that the execution mode is
//! invisible: the reference one-event-at-a-time loop, the same-timestamp
//! batched loop, and conservative-window sharding at any thread count must
//! produce **byte-identical** outcomes for every spec.  These tests throw
//! randomly generated small experiments — varying load, policy (including
//! the RNG-drawing random dispatcher), tier size, seed, mid-run churn and
//! fault plans — at every loop (serial, batched, sharded at 1/2/3/4/8
//! threads, pool forced so the real window protocol runs even on one core)
//! and compare the fully serialized `RunOutcome`s.  Shard *placement* gets
//! the same treatment: topology-aware and round-robin plans must agree.

use proptest::prelude::*;
use srlb_core::spec::{
    DownWindowSpec, ExperimentSpec, FaultLink, FaultNode, FaultPlan, LossSpec, PolicyKind,
    QueueSpec, ScenarioEvent,
};
use srlb_core::{RunOutcome, Runner, ShardPlanning};
use srlb_metrics::RequestOutcome;
use srlb_sim::{ExecMode, PoolPolicy, TopologyModel};

/// Serializes everything observable about an outcome.  `RunOutcome` derives
/// `Debug` all the way down (per-request records, per-LB and per-server
/// counters, phase stats, durations), so two equal strings mean the runs
/// were indistinguishable event for event.  The informational
/// `shard_plan` summary is normalized away first: it names the plan the run
/// executed on and *legitimately* differs across execution modes.
fn fingerprint(outcome: &RunOutcome) -> String {
    let mut normalized = outcome.clone();
    normalized.shard_plan = None;
    format!("{normalized:?}")
}

/// Runs a spec under `exec`, forcing the worker pool so sharded modes
/// exercise the real window protocol even on single-core test hosts.
fn run(spec: &ExperimentSpec, exec: ExecMode) -> RunOutcome {
    Runner::new(spec.clone())
        .unwrap()
        .with_exec(exec)
        .with_pool_policy(PoolPolicy::Force)
        .run()
}

fn policy(choice: u8) -> PolicyKind {
    match choice % 4 {
        0 => PolicyKind::RoundRobin,
        1 => PolicyKind::Static { threshold: 4 },
        2 => PolicyKind::Dynamic,
        // Two random candidates per flow: every SYN draws from the LB's
        // RNG, the sharpest detector of interleaving-dependent randomness.
        _ => PolicyKind::Explicit {
            dispatcher: srlb_core::DispatcherConfig::Random { k: 2 },
            acceptance: srlb_server::PolicyConfig::Static { threshold: 4 },
        },
    }
}

/// Builds a small random fault plan exercising every rule class: wildcard
/// probabilistic loss, an optional one-shot deterministic drop, an optional
/// link-down window, an optional bounded ingress queue and an optional slow
/// node, always with retransmission enabled so drops are recovered (or
/// aborted) rather than hanging the run.
fn fault_plan(
    loss_p: f64,
    drop_packet: u64,
    down: bool,
    queue: bool,
    slow: bool,
    max_retries: u32,
) -> FaultPlan {
    FaultPlan {
        loss: vec![LossSpec {
            link: FaultLink::default(),
            probability: loss_p,
        }],
        drops: if drop_packet > 0 {
            vec![srlb_core::spec::OneShotDropSpec {
                from: FaultNode::Client,
                to: FaultNode::Lb { index: 0 },
                packet: drop_packet,
            }]
        } else {
            Vec::new()
        },
        down: if down {
            vec![DownWindowSpec {
                link: FaultLink {
                    from: Some(FaultNode::Lb { index: 0 }),
                    to: Some(FaultNode::Server { index: 0 }),
                },
                from_seconds: 0.4,
                until_seconds: 0.8,
            }]
        } else {
            Vec::new()
        },
        queues: if queue {
            vec![QueueSpec {
                from: FaultNode::Client,
                to: FaultNode::Lb { index: 0 },
                capacity: 6,
                drain_pps: 150.0,
            }]
        } else {
            Vec::new()
        },
        slow_nodes: if slow {
            vec![srlb_core::spec::SlowNodeSpec {
                node: FaultNode::Server { index: 1 },
                multiplier: 3.0,
            }]
        } else {
            Vec::new()
        },
        recovery: Some(srlb_net::RetransmitPolicy {
            timeout_ms: 150.0,
            backoff: 2.0,
            jitter: 0.1,
            max_retries,
        }),
    }
}

proptest! {
    /// Batched and sharded loops reproduce the serial reference loop
    /// byte for byte on random static specs.
    #[test]
    fn exec_modes_agree_on_random_specs(
        rho in 0.3f64..0.9,
        choice in 0u8..4,
        queries in 60usize..160,
        seed in 0u64..1_000,
        lb_count in 1usize..4,
    ) {
        let spec = ExperimentSpec::poisson_paper(rho, policy(choice))
            .with_queries(queries)
            .with_seed(seed)
            .with_lb_count(lb_count);
        let reference = fingerprint(&run(&spec, ExecMode::SerialStep));
        for exec in [
            ExecMode::Batched,
            ExecMode::Sharded { threads: 1 },
            ExecMode::Sharded { threads: 2 },
            ExecMode::Sharded { threads: 4 },
            ExecMode::Sharded { threads: 8 },
        ] {
            let outcome = run(&spec, exec);
            prop_assert_eq!(
                &fingerprint(&outcome),
                &reference,
                "{:?} diverged from the serial loop",
                exec
            );
        }
    }

    /// Mid-run control events (server churn, LB fail-over) land at segment
    /// boundaries identically in every mode.
    #[test]
    fn exec_modes_agree_under_churn(
        rho in 0.4f64..0.8,
        seed in 0u64..1_000,
        churn_at in 0.2f64..1.0,
        server in 0u32..4,
    ) {
        let mut spec = ExperimentSpec::poisson_paper(rho, PolicyKind::Dynamic)
            .with_queries(120)
            .with_seed(seed)
            .with_lb_count(2)
            .at(churn_at, ScenarioEvent::RemoveServer { server })
            .at(churn_at + 0.4, ScenarioEvent::AddServer { server })
            .at(churn_at + 0.6, ScenarioEvent::LbFailover);
        spec.cluster.recover_flows = true;
        let reference = fingerprint(&run(&spec, ExecMode::SerialStep));
        for exec in [
            ExecMode::Batched,
            ExecMode::Sharded { threads: 3 },
            ExecMode::Sharded { threads: 8 },
        ] {
            let outcome = run(&spec, exec);
            prop_assert_eq!(
                &fingerprint(&outcome),
                &reference,
                "{:?} diverged from the serial loop under churn",
                exec
            );
        }
    }

    /// Random fault plans — loss, one-shot drops, down windows, bounded
    /// queues, slow nodes, retransmission — produce byte-identical outcomes
    /// (per-cause drop counters included) in every execution mode.
    #[test]
    fn exec_modes_agree_under_random_faults(
        rho in 0.3f64..0.8,
        choice in 0u8..4,
        seed in 0u64..1_000,
        lb_count in 1usize..4,
        loss_p in 0.0f64..0.04,
        drop_packet in 0u64..20,
        down in any::<bool>(),
        queue in any::<bool>(),
        slow in any::<bool>(),
        max_retries in 2u32..5,
    ) {
        let spec = ExperimentSpec::poisson_paper(rho, policy(choice))
            .with_queries(80)
            .with_seed(seed)
            .with_lb_count(lb_count)
            .with_faults(fault_plan(loss_p, drop_packet, down, queue, slow, max_retries));
        let reference_outcome = run(&spec, ExecMode::SerialStep);
        // Every request ends in exactly one terminal state; retransmission
        // never double-counts a completion.
        let terminal = reference_outcome.collector.completed_count()
            + reference_outcome.collector.reset_count()
            + reference_outcome.collector.aborted_count()
            + reference_outcome
                .collector
                .records()
                .iter()
                .filter(|r| r.outcome == RequestOutcome::Unfinished)
                .count();
        prop_assert_eq!(terminal, reference_outcome.collector.len());
        let reference = fingerprint(&reference_outcome);
        for exec in [
            ExecMode::Batched,
            ExecMode::Sharded { threads: 1 },
            ExecMode::Sharded { threads: 2 },
            ExecMode::Sharded { threads: 4 },
            ExecMode::Sharded { threads: 8 },
        ] {
            let outcome = run(&spec, exec);
            prop_assert_eq!(
                &fingerprint(&outcome),
                &reference,
                "{:?} diverged from the serial loop under faults",
                exec
            );
        }
    }

    /// Shard *placement* is a pure throughput knob: on a rack/zone topology
    /// the topology-aware and round-robin plans assign nodes differently
    /// (different lookahead, different cross-shard links) yet must produce
    /// byte-identical outcomes for random specs at random thread counts.
    #[test]
    fn shard_plans_agree_on_rack_topologies(
        rho in 0.3f64..0.9,
        choice in 0u8..4,
        queries in 60usize..140,
        seed in 0u64..1_000,
        threads in 2usize..6,
    ) {
        let spec = ExperimentSpec::poisson_paper(rho, policy(choice))
            .with_queries(queries)
            .with_seed(seed)
            .with_lb_count(2)
            .with_topology(TopologyModel::rack_zone_default());
        let plan_run = |planning: ShardPlanning| {
            Runner::new(spec.clone())
                .unwrap()
                .with_exec(ExecMode::Sharded { threads })
                .with_pool_policy(PoolPolicy::Force)
                .with_shard_planning(planning)
                .run()
        };
        let aware = plan_run(ShardPlanning::TopologyAware);
        let rr = plan_run(ShardPlanning::RoundRobin);
        prop_assert_eq!(
            fingerprint(&aware),
            fingerprint(&rr),
            "plans diverged at {} threads: {:?} vs {:?}",
            threads,
            aware.shard_plan,
            rr.shard_plan
        );
    }

    /// Under total loss every request aborts after exactly `max_retries`
    /// retransmissions — the budget is honoured request by request, in every
    /// execution mode.
    #[test]
    fn total_loss_aborts_after_exactly_max_retries(
        seed in 0u64..500,
        max_retries in 1u32..4,
        exec_choice in 0u8..3,
    ) {
        let mut plan = fault_plan(1.0, 0, false, false, false, max_retries);
        plan.down.clear();
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::Dynamic)
            .with_queries(20)
            .with_seed(seed)
            .with_faults(plan);
        let exec = match exec_choice {
            0 => ExecMode::SerialStep,
            1 => ExecMode::Batched,
            _ => ExecMode::Sharded { threads: 2 },
        };
        let outcome = run(&spec, exec);
        prop_assert_eq!(outcome.collector.aborted_count(), 20);
        for record in outcome.collector.records() {
            prop_assert_eq!(record.outcome, RequestOutcome::Aborted);
            prop_assert_eq!(record.retransmits, max_retries);
        }
        prop_assert_eq!(outcome.retransmits, 20 * u64::from(max_retries));
    }
}
