//! Asserts that the load balancer's per-flow operations perform **zero
//! heap allocations** once steady state is reached: candidate selection
//! through every dispatcher (written into a reusable [`CandidateList`]) and
//! flow-table learn/lookup of warm entries.
//!
//! The whole file is a single `#[test]` so the counting global allocator is
//! never polluted by a concurrently running sibling test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use srlb_core::dispatch::{
    CandidateList, ConsistentHashDispatcher, Dispatcher, MaglevDispatcher, RandomDispatcher,
};
use srlb_core::flow_table::FlowTable;
use srlb_net::{AddressPlan, FlowKey, Protocol};
use srlb_sim::{SimRng, SimTime};

/// Wraps the system allocator, counting every allocation.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter has no
// effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Runs `f` and returns `(allocations performed, result)`.
fn counting_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn per_flow_operations_are_allocation_free() {
    let plan = AddressPlan::default();
    let servers: Vec<_> = plan.server_addrs(12).collect();
    let keys: Vec<FlowKey> = (0..256u16)
        .map(|p| {
            FlowKey::new(
                plan.client_addr(0),
                plan.vip(0),
                1024 + p,
                80,
                Protocol::Tcp,
            )
        })
        .collect();
    let mut rng = SimRng::new(1);
    let mut out = CandidateList::new();

    let mut random = RandomDispatcher::power_of_two(servers.clone());
    let mut ring = ConsistentHashDispatcher::new(servers.clone(), 128, 2);
    let mut maglev = MaglevDispatcher::new(servers.clone(), 65_537, 2);

    let (allocs, _) = counting_allocs(|| {
        for key in &keys {
            random.candidates_into(key, &mut rng, &mut out);
            assert_eq!(out.len(), 2);
            ring.candidates_into(key, &mut rng, &mut out);
            assert_eq!(out.len(), 2);
            maglev.candidates_into(key, &mut rng, &mut out);
            assert_eq!(out.len(), 2);
        }
    });
    assert_eq!(allocs, 0, "candidate selection must not allocate per flow");

    // Flow table: warm it up (growth allocates), then learn/lookup of
    // existing entries must be allocation-free.
    let mut table = FlowTable::with_default_timeout();
    for (i, key) in keys.iter().enumerate() {
        table.learn(*key, servers[i % servers.len()], SimTime::ZERO);
    }
    let (allocs, _) = counting_allocs(|| {
        for (i, key) in keys.iter().enumerate() {
            table.learn(*key, servers[i % servers.len()], SimTime::ZERO);
            assert!(table.lookup(key, SimTime::ZERO).is_some());
        }
    });
    assert_eq!(
        allocs, 0,
        "warm flow-table learn/lookup must not allocate per flow"
    );

    // Bounded table under sustained eviction pressure: cycle a fixed
    // working set twice the capacity, so every learn of a currently-absent
    // key evicts the LRU entry and recycles its slot from the shard's free
    // list.  After one warm-up lap has grown each shard to its peak, the
    // steady-state learn → evict → reinsert → lookup cycle must not touch
    // the allocator.
    let mut bounded = srlb_core::FlowState::with_config(
        srlb_core::FlowStateConfig::new()
            .with_capacity(128)
            .with_shards(8),
    );
    // Two untimed laps: the first fills the table, the second cycles the
    // eviction window through every wrap-around position so each shard's
    // slot storage and index map reach their all-time peak before timing.
    for _ in 0..2 {
        for (i, key) in keys.iter().enumerate() {
            bounded.learn(*key, servers[i % servers.len()], SimTime::ZERO);
        }
    }
    let evictions_before = bounded.stats().evictions.total();
    let (allocs, _) = counting_allocs(|| {
        for _ in 0..4 {
            for (i, key) in keys.iter().enumerate() {
                bounded.learn(*key, servers[i % servers.len()], SimTime::ZERO);
                assert!(bounded.lookup(key, SimTime::ZERO).is_some());
            }
            assert_eq!(bounded.len(), 128);
        }
    });
    assert_eq!(
        allocs, 0,
        "warm bounded learn/evict/lookup must not allocate per flow"
    );
    // Every learn of the cycling working set evicted the LRU entry: the
    // timed section exercised the eviction path on all 4 × 256 learns.
    assert_eq!(
        bounded.stats().evictions.total(),
        evictions_before + 4 * keys.len() as u64
    );
}
