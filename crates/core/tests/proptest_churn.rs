//! Property-based tests for dispatcher behaviour under server churn:
//! remapping bounds on single-backend add/remove.
//!
//! The properties pin the guarantees the scenario engine's churn presets
//! rely on:
//!
//! * consistent hashing is *minimally disruptive*, exactly: removing a
//!   backend moves only the flows it owned, and adding one moves flows only
//!   onto the new backend,
//! * Maglev is minimally disruptive within a tolerance: every flow owned by
//!   a removed backend moves, and collateral movement (flows whose owner
//!   did not change membership) stays a small fraction of the population,
//! * `Dispatcher::rebuild` is equivalent to fresh construction, so churn
//!   applied incrementally or from scratch yields identical candidates.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use proptest::prelude::*;
use srlb_core::dispatch::{CandidateList, ConsistentHashDispatcher, Dispatcher, MaglevDispatcher};
use srlb_net::{AddressPlan, FlowKey, Protocol, ServerId};
use srlb_sim::SimRng;

fn servers(n: u32) -> Vec<Ipv6Addr> {
    let plan = AddressPlan::default();
    (0..n).map(|i| plan.server_addr(ServerId(i))).collect()
}

fn flow(client: u32, port: u16) -> FlowKey {
    let plan = AddressPlan::default();
    FlowKey::new(
        plan.client_addr(client),
        plan.vip(0),
        port.max(1),
        80,
        Protocol::Tcp,
    )
}

/// A deterministic probe-flow population large enough for stable fractions.
fn probes(count: u32) -> Vec<FlowKey> {
    (0..count)
        .map(|i| flow(i / 997, (i % 997) as u16 + 1))
        .collect()
}

/// First-candidate (owner) assignment of every probe under `dispatcher`.
fn owners(dispatcher: &mut dyn Dispatcher, flows: &[FlowKey]) -> Vec<Ipv6Addr> {
    let mut rng = SimRng::new(1);
    let mut out = CandidateList::new();
    flows
        .iter()
        .map(|f| {
            dispatcher.candidates_into(f, &mut rng, &mut out);
            out.as_slice()[0]
        })
        .collect()
}

proptest! {
    /// Consistent hashing, removal: flows not owned by the removed backend
    /// keep their owner *exactly*; flows it owned all move elsewhere.
    #[test]
    fn consistent_hash_removal_moves_only_owned_flows(
        n in 3u32..16,
        removed_index in 0u32..16,
        vnodes in 16usize..96,
    ) {
        let removed_index = removed_index % n;
        let pool = servers(n);
        let removed = pool[removed_index as usize];
        let flows = probes(512);

        let mut before = ConsistentHashDispatcher::new(pool.clone(), vnodes, 2);
        let owners_before = owners(&mut before, &flows);

        let shrunk: Vec<Ipv6Addr> =
            pool.iter().copied().filter(|a| *a != removed).collect();
        let mut after = ConsistentHashDispatcher::new(shrunk, vnodes, 2);
        let owners_after = owners(&mut after, &flows);

        for (old, new) in owners_before.iter().zip(&owners_after) {
            if *old == removed {
                prop_assert_ne!(*new, removed);
            } else {
                prop_assert_eq!(*new, *old);
            }
        }
    }

    /// Consistent hashing, addition: a flow either keeps its owner or moves
    /// onto the newly added backend — never onto another survivor.
    #[test]
    fn consistent_hash_addition_moves_flows_only_onto_the_new_server(
        n in 2u32..16,
        vnodes in 16usize..96,
    ) {
        let pool = servers(n);
        let added = AddressPlan::default().server_addr(ServerId(n));
        let flows = probes(512);

        let mut before = ConsistentHashDispatcher::new(pool.clone(), vnodes, 2);
        let owners_before = owners(&mut before, &flows);

        let mut grown_pool = pool;
        grown_pool.push(added);
        let mut after = ConsistentHashDispatcher::new(grown_pool, vnodes, 2);
        let owners_after = owners(&mut after, &flows);

        let mut moved = 0usize;
        for (old, new) in owners_before.iter().zip(&owners_after) {
            if old != new {
                prop_assert_eq!(*new, added);
                moved += 1;
            }
        }
        // The new server takes roughly its fair share 1/(n+1); allow a wide
        // margin for small vnode counts.
        prop_assert!(
            (moved as f64) < 3.0 * flows.len() as f64 / (n as f64 + 1.0),
            "added server captured {moved} of {} flows",
            flows.len()
        );
    }

    /// Maglev, removal: every flow owned by the removed backend moves, and
    /// collateral movement (flows whose owner survived) stays below 15% of
    /// the population (measured ~2% at table size 2039; the bound leaves
    /// headroom for the smaller tables this test sweeps).
    #[test]
    fn maglev_removal_disruption_is_bounded(
        n in 3u32..14,
        removed_index in 0u32..14,
    ) {
        let removed_index = removed_index % n;
        let pool = servers(n);
        let removed = pool[removed_index as usize];
        let flows = probes(512);

        let mut before = MaglevDispatcher::new(pool.clone(), 2039, 2);
        let owners_before = owners(&mut before, &flows);

        let shrunk: Vec<Ipv6Addr> =
            pool.iter().copied().filter(|a| *a != removed).collect();
        let mut after = MaglevDispatcher::new(shrunk, 2039, 2);
        let owners_after = owners(&mut after, &flows);

        let mut collateral = 0usize;
        for (old, new) in owners_before.iter().zip(&owners_after) {
            if *old == removed {
                prop_assert_ne!(*new, removed);
            } else if old != new {
                collateral += 1;
            }
        }
        prop_assert!(
            (collateral as f64) < 0.15 * flows.len() as f64,
            "maglev moved {collateral} flows whose owner survived (of {})",
            flows.len()
        );
    }

    /// Maglev, addition: moved flows land overwhelmingly on the new backend;
    /// collateral movement stays below 15% of the population.
    #[test]
    fn maglev_addition_disruption_is_bounded(n in 2u32..14) {
        let pool = servers(n);
        let added = AddressPlan::default().server_addr(ServerId(n));
        let flows = probes(512);

        let mut before = MaglevDispatcher::new(pool.clone(), 2039, 2);
        let owners_before = owners(&mut before, &flows);

        let mut grown_pool = pool;
        grown_pool.push(added);
        let mut after = MaglevDispatcher::new(grown_pool, 2039, 2);
        let owners_after = owners(&mut after, &flows);

        let mut collateral = 0usize;
        let mut onto_new = 0usize;
        for (old, new) in owners_before.iter().zip(&owners_after) {
            if old != new {
                if *new == added {
                    onto_new += 1;
                } else {
                    collateral += 1;
                }
            }
        }
        prop_assert!(onto_new > 0, "the new server must capture some flows");
        prop_assert!(
            (collateral as f64) < 0.15 * flows.len() as f64,
            "maglev moved {collateral} flows not onto the new server (of {})",
            flows.len()
        );
    }

    /// `rebuild` over an arbitrary add/remove sequence is equivalent to
    /// constructing a fresh dispatcher over the final membership: candidate
    /// lists (not just owners) are identical for every probe flow.
    #[test]
    fn incremental_rebuild_equals_fresh_construction(
        n in 2u32..10,
        churn in prop::collection::vec((0u32..20, any::<bool>()), 1..8),
    ) {
        let plan = AddressPlan::default();
        let mut membership: Vec<Ipv6Addr> = servers(n);
        let mut ch = ConsistentHashDispatcher::new(membership.clone(), 32, 2);
        let mut maglev = MaglevDispatcher::new(membership.clone(), 251, 2);

        for &(index, add) in &churn {
            let addr = plan.server_addr(ServerId(index));
            if add {
                if !membership.contains(&addr) {
                    membership.push(addr);
                }
            } else if membership.len() > 1 {
                membership.retain(|a| *a != addr);
            }
            ch.rebuild(membership.clone());
            maglev.rebuild(membership.clone());
        }

        let flows = probes(64);
        let mut fresh_ch = ConsistentHashDispatcher::new(membership.clone(), 32, 2);
        let mut fresh_maglev = MaglevDispatcher::new(membership.clone(), 251, 2);
        let mut rng = SimRng::new(1);
        for f in &flows {
            prop_assert_eq!(
                ch.candidates(f, &mut rng),
                fresh_ch.candidates(f, &mut rng)
            );
            prop_assert_eq!(
                maglev.candidates(f, &mut rng),
                fresh_maglev.candidates(f, &mut rng)
            );
        }
        // The per-flow owner maps agree as well (sanity over the whole set).
        let via_rebuild: HashMap<&FlowKey, Ipv6Addr> =
            flows.iter().zip(owners(&mut ch, &flows)).collect();
        for (f, owner) in flows.iter().zip(owners(&mut fresh_ch, &flows)) {
            prop_assert_eq!(via_rebuild[f], owner);
        }
    }
}
