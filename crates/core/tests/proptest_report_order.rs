//! Regression: report assembly is deterministic when requests are left
//! unfinished.
//!
//! PR 6 caught `ClientNode::into_collector` draining its leftover
//! in-flight records in randomized `HashMap` order, so any run that
//! orphans flows (server churn under the random dispatcher with flow
//! recovery off) could serialize its unfinished records differently from
//! one process to the next.  The field is a `BTreeMap` now — these
//! replays pin the fixed path: runs that exercise the leftover drain must
//! be byte-identical across repeated executions *and* across every
//! execution mode.

use proptest::prelude::*;
use srlb_core::spec::{ExperimentSpec, PolicyKind, ScenarioEvent};
use srlb_core::{RunOutcome, Runner};
use srlb_metrics::RequestOutcome;
use srlb_sim::ExecMode;

/// Serializes everything observable about an outcome, per-request records
/// included — the order leftover records were drained in is part of it.
fn fingerprint(outcome: &RunOutcome) -> String {
    format!("{outcome:?}")
}

/// A spec shaped to orphan established flows: the random dispatcher keeps
/// no flow→server consistency across rebuilds, recovery is off (the
/// default) and a mid-run server removal strands every flow pinned to the
/// removed server, so their requests end the run still in flight.
fn orphaning_spec(rho: f64, seed: u64, churn_at: f64, server: u32) -> ExperimentSpec {
    ExperimentSpec::poisson_paper(
        rho,
        PolicyKind::Explicit {
            dispatcher: srlb_core::DispatcherConfig::Random { k: 2 },
            acceptance: srlb_server::PolicyConfig::Static { threshold: 4 },
        },
    )
    .with_queries(100)
    .with_seed(seed)
    .at(churn_at, ScenarioEvent::RemoveServer { server })
}

fn unfinished_count(outcome: &RunOutcome) -> usize {
    outcome
        .collector
        .records()
        .iter()
        .filter(|r| r.outcome == RequestOutcome::Unfinished)
        .count()
}

/// Deterministic guard that the generator actually reaches the leftover
/// drain: with this pinned spec some requests must end unfinished, and
/// their records — sent in request-id order — must drain back out in that
/// same order.
#[test]
fn pinned_orphaning_run_exercises_the_leftover_drain() {
    let outcome = Runner::new(orphaning_spec(0.8, 7, 0.15, 1))
        .unwrap()
        .with_exec(ExecMode::SerialStep)
        .run();
    assert!(
        unfinished_count(&outcome) > 0,
        "spec was expected to orphan at least one flow"
    );
    // Leftovers drain after all terminal records, ordered by request id;
    // ids are assigned in arrival order, so their send times ascend.
    let unfinished_sent: Vec<f64> = outcome
        .collector
        .records()
        .iter()
        .filter(|r| r.outcome == RequestOutcome::Unfinished)
        .map(|r| r.sent_at_seconds)
        .collect();
    let mut sorted = unfinished_sent.clone();
    sorted.sort_by(f64::total_cmp);
    assert_eq!(unfinished_sent, sorted, "leftover drain must be id-ordered");
}

proptest! {
    /// Random orphaning runs serialize identically on repeated execution
    /// (per-instance hash randomness would already break this) and across
    /// all execution modes.
    #[test]
    fn leftover_drain_is_identical_across_exec_modes(
        rho in 0.5f64..0.9,
        seed in 0u64..400,
        churn_at in 0.1f64..0.5,
        server in 0u32..4,
    ) {
        let spec = orphaning_spec(rho, seed, churn_at, server);
        let reference_outcome = Runner::new(spec.clone())
            .unwrap()
            .with_exec(ExecMode::SerialStep)
            .run();
        let reference = fingerprint(&reference_outcome);
        // Same mode, fresh process state: a randomized container anywhere
        // in the report path would diverge here.
        let rerun = Runner::new(spec.clone())
            .unwrap()
            .with_exec(ExecMode::SerialStep)
            .run();
        prop_assert_eq!(&fingerprint(&rerun), &reference, "rerun diverged");
        for exec in [
            ExecMode::Batched,
            ExecMode::Sharded { threads: 1 },
            ExecMode::Sharded { threads: 2 },
            ExecMode::Sharded { threads: 4 },
        ] {
            let outcome = Runner::new(spec.clone()).unwrap().with_exec(exec).run();
            prop_assert_eq!(
                &fingerprint(&outcome),
                &reference,
                "{:?} diverged from the serial loop",
                exec
            );
        }
    }
}
