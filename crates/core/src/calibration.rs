//! λ₀ bootstrap: finding the maximum sustainable request rate.
//!
//! The paper's first experimental step identifies λ₀, "the max rate
//! sustainable by the 12-servers swarm, i.e. the smallest value of λ for
//! which some TCP connections were dropped", and then expresses every
//! Poisson experiment in terms of the normalised rate ρ = λ/λ₀.  This module
//! provides both the analytic capacity of the simulated cluster and an
//! empirical bisection search equivalent to the paper's bootstrap.

use crate::experiment::{ExperimentConfig, PolicyKind, WorkloadKind};
use crate::CoreError;

/// Analytic CPU capacity of the cluster in queries per second:
/// `servers × cores / mean_service_seconds`.
///
/// Requests are CPU-bound (the paper's Poisson workload is a PHP busy loop),
/// so the capacity is set by the cores, not by the 32 worker threads that
/// share them.  With the paper's parameters (12 two-core VMs, 100 ms mean
/// CPU demand) this is 240 queries/s.  It is an upper bound on λ₀: the real
/// sustainable rate is slightly lower because of queueing variance.
///
/// # Panics
///
/// Panics if `mean_service_ms` is not strictly positive and finite.
pub fn analytic_lambda0(servers: usize, cores: usize, mean_service_ms: f64) -> f64 {
    assert!(
        mean_service_ms.is_finite() && mean_service_ms > 0.0,
        "mean service time must be positive"
    );
    (servers * cores) as f64 / (mean_service_ms / 1e3)
}

/// Configuration of the empirical λ₀ search.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Number of servers.
    pub servers: usize,
    /// Worker threads per server.
    pub workers: usize,
    /// CPU cores per server.
    pub cores: usize,
    /// TCP backlog per server.
    pub backlog: usize,
    /// Mean service time in milliseconds.
    pub mean_service_ms: f64,
    /// Queries injected per probe run (more gives a sharper estimate).
    pub probe_queries: usize,
    /// Number of bisection iterations.
    pub iterations: usize,
    /// Fraction of reset connections above which a rate counts as
    /// unsustainable (0 reproduces the paper's "some connections dropped").
    pub reset_tolerance: f64,
    /// Random seed.
    pub seed: u64,
}

impl CalibrationConfig {
    /// The paper's cluster with probe runs small enough for tests.
    pub fn paper_scaled(probe_queries: usize) -> Self {
        CalibrationConfig {
            servers: 12,
            workers: 32,
            cores: 2,
            backlog: 128,
            mean_service_ms: 100.0,
            probe_queries,
            iterations: 7,
            reset_tolerance: 0.0,
            seed: 1,
        }
    }
}

/// Result of the empirical λ₀ search.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationResult {
    /// The estimated maximum sustainable rate, in queries per second.
    pub lambda0: f64,
    /// The analytic upper bound used to initialise the search.
    pub analytic_upper_bound: f64,
    /// `(rate, reset_fraction)` pairs of every probe run, in search order.
    pub probes: Vec<(f64, f64)>,
}

/// Runs the bisection search for λ₀ using the RR policy (as the paper's
/// bootstrap does, before any Service Hunting policy is engaged).
///
/// The search brackets λ₀ between 0 and the analytic capacity, probing the
/// midpoint with a short Poisson run and narrowing towards the largest rate
/// whose reset fraction stays within `reset_tolerance`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the underlying experiment
/// configuration is invalid.
pub fn calibrate_lambda0(config: &CalibrationConfig) -> Result<CalibrationResult, CoreError> {
    let upper = analytic_lambda0(config.servers, config.cores, config.mean_service_ms);
    let mut lo = 0.0f64;
    let mut hi = upper;
    let mut probes = Vec::with_capacity(config.iterations);

    for i in 0..config.iterations {
        let rate = (lo + hi) / 2.0;
        let experiment = ExperimentConfig {
            workload: WorkloadKind::Poisson {
                rho: 1.0,
                lambda0: Some(rate),
                queries: config.probe_queries,
                mean_service_ms: config.mean_service_ms,
            },
            policy: PolicyKind::RoundRobin,
            servers: config.servers,
            workers: config.workers,
            cores: config.cores,
            backlog: config.backlog,
            record_load: false,
            seed: config.seed.wrapping_add(i as u64),
        };
        let result = experiment.run()?;
        let reset_fraction = result.reset_fraction();
        probes.push((rate, reset_fraction));
        if reset_fraction > config.reset_tolerance {
            hi = rate;
        } else {
            lo = rate;
        }
    }

    Ok(CalibrationResult {
        lambda0: lo,
        analytic_upper_bound: upper,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_capacity_matches_paper_parameters() {
        assert!((analytic_lambda0(12, 2, 100.0) - 240.0).abs() < 1e-9);
        assert!((analytic_lambda0(1, 1, 1000.0) - 1.0).abs() < 1e-9);
        assert!((analytic_lambda0(4, 4, 20.0) - 800.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_service_time_panics() {
        analytic_lambda0(1, 1, 0.0);
    }

    #[test]
    fn calibration_finds_a_rate_below_the_analytic_bound() {
        // A small cluster so the probe runs stay fast.
        let config = CalibrationConfig {
            servers: 3,
            workers: 4,
            cores: 2,
            backlog: 8,
            mean_service_ms: 20.0,
            probe_queries: 600,
            iterations: 5,
            reset_tolerance: 0.0,
            seed: 3,
        };
        let result = calibrate_lambda0(&config).unwrap();
        let upper = analytic_lambda0(3, 2, 20.0);
        assert_eq!(result.analytic_upper_bound, upper);
        assert!(result.lambda0 > 0.0);
        assert!(result.lambda0 <= upper);
        assert_eq!(result.probes.len(), 5);
        // The probes at rates above the returned lambda0 + tolerance saw
        // resets; the search is therefore meaningful.
        assert!(result.probes.iter().any(|&(_, resets)| resets > 0.0));
    }
}
