//! The unified experiment runner.
//!
//! [`Runner`] executes an [`ExperimentSpec`] end to end: it lays out node
//! ids and addresses for the *whole potential cluster* (`max_servers`
//! backends behind an `lb_count`-instance load-balancer tier) up front — so
//! adding a backend later never perturbs the id ↔ address mapping and runs
//! stay deterministic — pulls the workload on demand from its
//! [`Workload`](srlb_workload::Workload) stream, and advances the
//! simulation in **segments**: up to each scheduled control event's
//! timestamp, apply the event through the simulator's control-delivery
//! primitives, continue.  A static cluster is simply the degenerate
//! single-segment case with an empty schedule.
//!
//! The load-balancer tier is fronted by deterministic resilient ECMP
//! steering ([`srlb_sim::ecmp_steer`]): every instance advertises the same
//! anycast address and VIPs, registered in the [`Directory`] as a shared
//! tier whose membership the runner mutates on `AddLb` / `RemoveLb` events
//! — route advertisement and withdrawal, observed by every node on its
//! next send.  With `lb_count = 1` the tier degenerates to the single load
//! balancer of the paper's testbed and runs are byte-identical to the
//! pre-tier runner.
//!
//! Both the figure harness (`srlb-bench`) and the scenario crate
//! (`srlb-scenario`) are thin clients of this runner.
//!
//! # Execution modes
//!
//! The runner drives the simulation through [`srlb_sim::ShardedNetwork`]
//! under an [`ExecMode`]: the reference per-event loop, the single-threaded
//! same-timestamp batched loop (default), or conservative-window sharding
//! across worker threads.  All three produce **byte-identical** outcomes —
//! event ordering keys and per-node RNG streams are interleaving-independent
//! by construction — so the mode is a pure throughput knob.  The default is
//! taken from the `SRLB_SIM_THREADS` environment variable (set by the bench
//! CLI's `--sim-threads` flag) and can be overridden per runner with
//! [`Runner::with_exec`].
//!
//! Shard *placement* defaults to [`ShardPlanning::TopologyAware`]: under a
//! rack/zone topology each rack's servers and its attached LB instances are
//! kept on one shard, so the only cross-shard links are cross-rack (or
//! client) links — maximising the conservative lookahead window and
//! minimising cross-shard event volume.  Placement is a pure throughput
//! knob: any plan produces byte-identical outcomes (pinned by proptest), so
//! [`ShardPlanning::RoundRobin`] exists only as the comparison baseline.
//! The chosen plan is recorded in [`RunOutcome::shard_plan`].

use std::net::Ipv6Addr;

use srlb_metrics::{DisruptionCollector, PhaseStats, ResponseTimeCollector};
use srlb_net::{AddressPlan, Packet, ServerId};
use srlb_server::{tier_members, Directory, ServerConfig, ServerNode, ServerStats};
use srlb_sim::{
    ExecMode, NodeId, PoolPolicy, RunUntil, ShardPlan, ShardedNetwork, SimDuration, SimStats,
    SimTime,
};

use crate::client::{client_addr_count, ClientNode};
use crate::lb_node::{LbStats, LoadBalancerNode};
use crate::spec::{ExperimentSpec, ScenarioEvent};
use crate::CoreError;

/// Everything measured during one experiment run.
///
/// This is the superset both legacy result types project from:
/// `ExperimentResult` (paper figures) and the scenario crate's
/// `ScenarioOutcome`.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The spec's name.
    pub name: String,
    /// Policy label (`"RR"`, `"SR4"`, `"SRdyn"`, `"explicit-…"`, …).
    pub label: String,
    /// The dispatcher's report name (over the initial backend set).
    pub dispatcher_name: String,
    /// Per-request records collected by the client.
    pub collector: ResponseTimeCollector,
    /// Tier-wide load-balancer counters: the [`LbStats::merge`] of every
    /// instance's counters (for `lb_count = 1`, exactly that instance's
    /// own counters).
    pub lb_stats: LbStats,
    /// Per-instance load-balancer counters, indexed by LB instance.
    pub per_lb_stats: Vec<LbStats>,
    /// Per-server counters indexed by server (over `max_servers`), merged
    /// across remove/re-add incarnations.
    pub server_stats: Vec<ServerStats>,
    /// Per-server `(time_seconds, busy_workers)` samples (empty unless
    /// `record_load` was enabled), merged across incarnations.
    pub load_series: Vec<Vec<(f64, usize)>>,
    /// Per-server first-candidate acceptance ratios: the latest
    /// incarnation's ratio — as of removal time for servers that ended the
    /// run down, `0.0` for reserved slots that never came up.
    pub acceptance_ratios: Vec<f64>,
    /// Per-phase disruption statistics (phases delimited by the scenario
    /// events; a single phase for static runs).
    pub phases: Vec<PhaseStats>,
    /// Seconds between the fail-over and the last re-hunt, if any (the
    /// maximum across LB instances that reconstructed state).
    pub reconstruction_latency_s: Option<f64>,
    /// Simulated duration of the run in seconds.
    pub duration_seconds: f64,
    /// Total simulation events processed.
    pub events_processed: u64,
    /// Messages dropped by injected faults (probabilistic loss and
    /// one-shot drops); zero on fault-free runs.
    pub dropped_injected: u64,
    /// Messages tail-dropped by bounded per-link queues.
    pub dropped_queue: u64,
    /// Messages dropped inside link down windows.
    pub dropped_link_down: u64,
    /// Total client retransmissions across all requests.
    pub retransmits: u64,
    /// Requests the client aborted after exhausting its retransmission
    /// budget.
    pub aborted: u64,
    /// Human-readable description of the shard plan the run executed on
    /// (`None` when it ran on a single core — one-shard plan, zero
    /// lookahead, or the pool policy collapsed a multi-shard plan).  Purely
    /// informational: placement never affects any other field.
    pub shard_plan: Option<String>,
}

/// How the runner assigns nodes to shards under [`ExecMode::Sharded`].
///
/// Placement is a pure throughput knob — every plan produces byte-identical
/// outcomes — but it bounds the conservative lookahead: the window length is
/// the minimum cross-shard link latency, so a plan that splits a rack
/// across shards is stuck synchronising at the intra-rack latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPlanning {
    /// Group each rack's servers with their attached LB instances
    /// ([`ShardPlan::topology_aware`]); degenerates to round-robin on
    /// uniform topologies, where placement cannot change the lookahead.
    #[default]
    TopologyAware,
    /// Stripe LBs and servers modulo the thread count
    /// ([`ShardPlan::round_robin`]) — the pre-placement baseline, kept as
    /// the comparison arm for the plan-equivalence tests.
    RoundRobin,
}

/// Executes [`ExperimentSpec`]s.
#[derive(Debug, Clone)]
pub struct Runner {
    spec: ExperimentSpec,
    exec: ExecMode,
    planning: ShardPlanning,
    pool: PoolPolicy,
}

impl Runner {
    /// Creates a runner for a validated spec.
    ///
    /// The execution mode defaults to [`ExecMode::from_env`], i.e. the
    /// batched single-threaded loop unless `SRLB_SIM_THREADS` asks for
    /// shards.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if
    /// [`ExperimentSpec::validate`] rejects the spec.
    pub fn new(spec: ExperimentSpec) -> Result<Self, CoreError> {
        spec.validate()?;
        Ok(Runner {
            spec,
            exec: ExecMode::from_env(),
            planning: ShardPlanning::default(),
            pool: PoolPolicy::default(),
        })
    }

    /// Overrides the execution mode.  Every mode produces byte-identical
    /// outcomes; this is a throughput knob only.
    #[must_use]
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Overrides the shard placement strategy (throughput knob only; see
    /// [`ShardPlanning`]).
    #[must_use]
    pub fn with_shard_planning(mut self, planning: ShardPlanning) -> Self {
        self.planning = planning;
        self
    }

    /// Overrides the worker-pool policy ([`PoolPolicy::Force`] lets tests
    /// exercise the threaded window protocol on single-core hosts).
    #[must_use]
    pub fn with_pool_policy(mut self, pool: PoolPolicy) -> Self {
        self.pool = pool;
        self
    }

    /// The execution mode this runner will use.
    pub fn exec(&self) -> ExecMode {
        self.exec
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The shard layout for this spec, per the configured
    /// [`ShardPlanning`].  Every LB instance lives whole on one shard
    /// either way (keeping its flow table and its ECMP-steered flows
    /// together); the strategies differ in how racks map onto shards.
    fn shard_plan(&self) -> ShardPlan {
        let lb_count = self.spec.cluster.lb_count;
        let max_servers = self.spec.cluster.max_servers;
        let threads = self.exec.threads();
        match self.planning {
            ShardPlanning::TopologyAware => {
                ShardPlan::topology_aware(&self.spec.topology, lb_count, max_servers, threads)
            }
            ShardPlanning::RoundRobin => ShardPlan::round_robin(lb_count, max_servers, threads),
        }
    }

    /// Advances the network under `policy` using the configured execution
    /// mode's loop.
    fn drive(&self, network: &mut ShardedNetwork<Packet>, policy: RunUntil) -> SimStats {
        match self.exec {
            ExecMode::SerialStep => network.run_until_stepwise(policy),
            ExecMode::Batched | ExecMode::Sharded { .. } => network.run_until(policy),
        }
    }

    /// Runs the experiment to completion.  Deterministic: the same spec
    /// always produces the same outcome.
    pub fn run(&self) -> RunOutcome {
        let spec = &self.spec;
        let cluster = &spec.cluster;
        let plan = AddressPlan::default();

        let source = spec.workload.stream(spec.seed, cluster);
        let total_requests = source.remaining();

        // Fixed id ↔ address layout over the whole potential cluster: the
        // client, then the LB tier, then every backend slot.  With
        // `lb_count = 1` this is exactly the pre-tier layout.
        let lb_count = cluster.lb_count;
        let client_id = NodeId(0);
        let lb_node_id = |j: usize| NodeId(1 + j);
        let lb_ids: Vec<NodeId> = (0..lb_count).map(lb_node_id).collect();
        let server_node_id = |i: usize| NodeId(1 + lb_count + i);
        let server_ids: Vec<NodeId> = (0..cluster.max_servers).map(server_node_id).collect();

        // The whole tier advertises one anycast LB address and the VIPs;
        // the shared membership handle is the runner's model of the ECMP
        // routing table, mutated on AddLb/RemoveLb events below.
        let tier = tier_members(lb_ids.clone());
        let mut directory = Directory::new();
        for a in 0..client_addr_count(total_requests) {
            directory.register(plan.client_addr(a), client_id);
        }
        directory.register_tier(plan.lb_addr(), tier.clone());
        let vips: Vec<Ipv6Addr> = (0..cluster.vips).map(|v| plan.vip(v)).collect();
        for &vip in &vips {
            directory.register_tier(vip, tier.clone());
        }
        for (i, &sid) in server_ids.iter().enumerate() {
            directory.register(plan.server_addr(ServerId(i as u32)), sid);
        }

        // Slow-node latency multipliers are folded into the topology before
        // the network is built, so conservative-window lookahead is computed
        // from the slowed links and sharding stays byte-identical.
        let mut topology = spec.topology.build(client_id, &lb_ids, &server_ids);
        let node_count = 1 + lb_count + cluster.max_servers;
        for slow in &spec.faults.slow_nodes {
            topology.scale_links_of(
                slow.node.resolve(client_id, &lb_ids, &server_ids),
                slow.multiplier,
                node_count,
            );
        }
        let mut network: ShardedNetwork<Packet> =
            ShardedNetwork::with_pool_policy(spec.seed, topology, self.shard_plan(), self.pool);
        // Describe the plan actually in effect (after any single-core
        // collapse).  Informational only — it must never enter serialized
        // run reports, which are byte-diffed across `--sim-threads` values.
        let shard_plan_summary = (network.shards() > 1).then(|| {
            format!(
                "{}: {} shards {:?}, lookahead {} µs",
                match self.planning {
                    ShardPlanning::TopologyAware => "topology-aware",
                    ShardPlanning::RoundRobin => "round-robin",
                },
                network.shards(),
                network.plan().shard_sizes(),
                network.lookahead().as_nanos() / 1_000,
            )
        });
        if spec.faults.injects_faults() {
            network.set_faults(&spec.faults.to_fault_config(client_id, &lb_ids, &server_ids));
        }

        let mut client =
            ClientNode::from_workload(plan.clone(), vips[0], directory.clone(), source)
                .with_vips(vips.clone())
                .with_request_delay(SimDuration::from_millis_f64(spec.request_delay_ms));
        if !spec.faults.is_empty() {
            client = client.with_retransmit(spec.faults.effective_recovery());
        }
        let added_client = network.add_node(client);
        debug_assert_eq!(added_client, client_id);

        let mut alive: Vec<bool> = (0..cluster.max_servers)
            .map(|i| i < cluster.initial_servers)
            .collect();
        let alive_addrs = |alive: &[bool]| -> Vec<Ipv6Addr> {
            alive
                .iter()
                .enumerate()
                .filter(|(_, &up)| up)
                .map(|(i, _)| plan.server_addr(ServerId(i as u32)))
                .collect()
        };

        // Every instance of the tier: same anycast address, same VIPs, its
        // own dispatcher and flow table.
        let mut dispatcher_name = String::new();
        for j in 0..lb_count {
            let mut lb = LoadBalancerNode::new(
                plan.lb_addr(),
                vips[0],
                directory.clone(),
                spec.policy.dispatcher().build(alive_addrs(&alive)),
            )
            .with_vips(vips.clone())
            .with_flow_table(cluster.flow_table.build());
            if let Some(interval) = cluster.flow_table.sweep_interval() {
                lb = lb.with_expiry_sweep(interval);
            }
            if cluster.recover_flows {
                lb = lb.with_flow_recovery();
            }
            if j == 0 {
                dispatcher_name = lb.dispatcher_name();
            }
            let added_lb = network.add_node(lb);
            debug_assert_eq!(added_lb, lb_node_id(j));
        }

        let acceptance = spec.policy.acceptance_policy();
        let server_config = |i: usize| -> ServerConfig {
            let (workers, cores) = cluster.capacity_of(i as u32);
            ServerConfig {
                server_index: i as u32,
                addr: plan.server_addr(ServerId(i as u32)),
                lb_addr: plan.lb_addr(),
                workers,
                cores,
                backlog: cluster.backlog,
                policy: acceptance,
                record_load: cluster.record_load,
            }
        };
        for (i, up) in alive.iter().enumerate() {
            if *up {
                let added = network.add_node(ServerNode::new(server_config(i), directory.clone()));
                debug_assert_eq!(added, server_node_id(i));
            } else {
                let reserved = network.reserve_node();
                debug_assert_eq!(reserved, server_node_id(i));
            }
        }

        // Per-server accumulators, merged across remove/re-add incarnations.
        let mut merged_stats = vec![ServerStats::default(); cluster.max_servers];
        let mut load_series: Vec<Vec<(f64, usize)>> = vec![Vec::new(); cluster.max_servers];
        let mut acceptance_ratios = vec![0.0f64; cluster.max_servers];
        let mut harvest = |node: ServerNode, i: usize| {
            merged_stats[i].absorb(node.stats());
            load_series[i].extend_from_slice(node.load_samples());
            acceptance_ratios[i] = node.agent().acceptance_ratio();
        };

        // Rebuilds every tier instance's dispatcher over the current
        // backend set (server churn is tier-wide: withdrawn instances are
        // rebuilt too, so a later re-advertisement steers correctly).
        let rebuild_tier = |network: &mut ShardedNetwork<Packet>, addrs: &[Ipv6Addr]| {
            for &lb in &lb_ids {
                network
                    .node_as_mut::<LoadBalancerNode>(lb)
                    // srlb-lint: allow(panic-hygiene) -- lb_ids come from the layout this runner just built; a missing node is a setup bug worth aborting on
                    .expect("load balancer present")
                    .rebuild_backends(addrs.to_vec());
            }
        };

        // Segment the run at each control event's timestamp.
        let mut boundaries: Vec<(String, f64)> = Vec::with_capacity(spec.scenario.len());
        for timed in &spec.scenario {
            self.drive(
                &mut network,
                RunUntil::Time(SimTime::from_secs_f64(timed.at_seconds)),
            );
            boundaries.push((timed.event.label(), timed.at_seconds));
            match timed.event {
                ScenarioEvent::AddServer { server } => {
                    let i = server as usize;
                    network.insert_node(
                        server_node_id(i),
                        ServerNode::new(server_config(i), directory.clone()),
                    );
                    alive[i] = true;
                    rebuild_tier(&mut network, &alive_addrs(&alive));
                }
                ScenarioEvent::RemoveServer { server } => {
                    let i = server as usize;
                    let node: ServerNode = network
                        .take_node(server_node_id(i))
                        // srlb-lint: allow(panic-hygiene) -- ScenarioSpec::validate rejects schedules that remove a dead server before the run starts
                        .expect("validated schedule removes only live servers");
                    harvest(node, i);
                    alive[i] = false;
                    rebuild_tier(&mut network, &alive_addrs(&alive));
                }
                ScenarioEvent::LbFailover => {
                    // Fail over every *advertised* instance; the shared
                    // tier is the single source of truth for advertisement.
                    let advertised: Vec<usize> = {
                        // srlb-lint: allow(panic-hygiene) -- lock poisoning means another thread already panicked; propagating is the only sound option
                        let tier = tier.read().expect("tier lock poisoned");
                        (0..lb_count)
                            .filter(|&j| tier.contains(lb_node_id(j)))
                            .collect()
                    };
                    for j in advertised {
                        network
                            .control::<LoadBalancerNode, _>(lb_node_id(j), |lb, ctx| {
                                lb.fail_over(ctx.now())
                            })
                            // srlb-lint: allow(panic-hygiene) -- every tier instance is created up front and withdrawal never removes the node
                            .expect("load balancer present");
                    }
                }
                ScenarioEvent::AddLb { lb } => {
                    tier.write()
                        // srlb-lint: allow(panic-hygiene) -- lock poisoning means another thread already panicked; propagating is the only sound option
                        .expect("tier lock poisoned")
                        .add(lb_node_id(lb as usize));
                }
                ScenarioEvent::RemoveLb { lb } => {
                    // A route withdrawal, not a node removal: packets
                    // already in the fabric still deliver, subsequent
                    // packets of the instance's flows re-steer to peers.
                    tier.write()
                        // srlb-lint: allow(panic-hygiene) -- lock poisoning means another thread already panicked; propagating is the only sound option
                        .expect("tier lock poisoned")
                        .remove(lb_node_id(lb as usize));
                }
                ScenarioEvent::SetCapacity {
                    server,
                    workers,
                    cores,
                } => {
                    network
                        .control::<ServerNode, _>(server_node_id(server as usize), |s, ctx| {
                            s.set_capacity(workers, cores, ctx)
                        })
                        // srlb-lint: allow(panic-hygiene) -- ScenarioSpec::validate rejects schedules that resize a dead server before the run starts
                        .expect("validated schedule resizes only live servers");
                }
            }
        }

        // Drain the remaining events.  Each request generates a small,
        // bounded number of simulation events (SYN, hunt hops, SYN-ACK,
        // request, service timer, response, …); 96 per request is a
        // generous safety margin that also covers post-failover re-hunts
        // and ownership adverts.
        // Retransmitting clients re-send whole requests: scale the budget
        // by the retry allowance so lossy runs drain fully.
        let per_request: u64 = if self.spec.faults.is_empty() {
            96
        } else {
            96 * (1 + u64::from(self.spec.faults.effective_recovery().max_retries))
        };
        let limit = RunUntil::Events((total_requests as u64).saturating_mul(per_request) + 10_000);
        let stats = self.drive(&mut network, limit);

        for (i, up) in alive.iter().enumerate() {
            if *up {
                let node: ServerNode = network
                    .take_node(server_node_id(i))
                    // srlb-lint: allow(panic-hygiene) -- `alive[i]` tracks exactly which server nodes the runner inserted and never removed
                    .expect("live server present after run");
                harvest(node, i);
            }
        }
        // Every tier instance still exists (withdrawal keeps the node so
        // in-fabric packets deliver); the tier-wide aggregate is the merge
        // of the per-instance counters.
        let mut per_lb_stats = Vec::with_capacity(lb_count);
        let mut reconstruction_latency_s: Option<f64> = None;
        for j in 0..lb_count {
            let lb_node: LoadBalancerNode = network
                .take_node(lb_node_id(j))
                // srlb-lint: allow(panic-hygiene) -- every tier instance is created up front and withdrawal never removes the node
                .expect("load balancer present after run");
            if let Some(latency) = lb_node.reconstruction_latency_seconds() {
                reconstruction_latency_s =
                    Some(reconstruction_latency_s.map_or(latency, |best| best.max(latency)));
            }
            per_lb_stats.push(lb_node.stats());
        }
        let client_node: ClientNode = network
            .take_node(client_id)
            // srlb-lint: allow(panic-hygiene) -- the client node is inserted at setup and nothing in the run removes it
            .expect("client present after run");
        let collector = client_node.into_collector();

        let phases =
            DisruptionCollector::new(boundaries, cluster.max_servers).stats(collector.records());

        RunOutcome {
            name: spec.name.clone(),
            label: spec.policy.label(),
            dispatcher_name,
            reconstruction_latency_s,
            lb_stats: LbStats::merged(per_lb_stats.iter().copied()),
            per_lb_stats,
            server_stats: merged_stats,
            load_series,
            acceptance_ratios,
            phases,
            duration_seconds: stats.last_event_time.as_secs_f64(),
            events_processed: stats.events_processed,
            dropped_injected: stats.dropped_injected,
            dropped_queue: stats.dropped_queue,
            dropped_link_down: stats.dropped_link_down,
            retransmits: collector.retransmit_total(),
            aborted: collector.aborted_count() as u64,
            collector,
            shard_plan: shard_plan_summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultPlan, PolicyKind, WorkloadSpec};
    use srlb_sim::TopologyModel;

    fn quick_spec(rho: f64, policy: PolicyKind) -> ExperimentSpec {
        ExperimentSpec::poisson_paper(rho, policy).with_queries(400)
    }

    #[test]
    fn static_run_completes_and_reports() {
        let outcome = Runner::new(quick_spec(0.5, PolicyKind::Static { threshold: 4 }))
            .unwrap()
            .run();
        assert_eq!(outcome.label, "SR4");
        assert_eq!(outcome.collector.len(), 400);
        assert!(outcome.collector.completed_count() > 0);
        assert_eq!(outcome.server_stats.len(), 12);
        assert_eq!(outcome.phases.len(), 1, "static run is a single phase");
        assert!(outcome.duration_seconds > 0.0);
        assert!(outcome.events_processed > 400);
    }

    #[test]
    fn invalid_spec_is_rejected_at_construction() {
        let mut spec = quick_spec(0.5, PolicyKind::RoundRobin);
        spec.cluster.initial_servers = 0;
        assert!(Runner::new(spec).is_err());
    }

    #[test]
    fn identical_specs_give_identical_outcomes() {
        let spec = quick_spec(0.7, PolicyKind::Dynamic).with_seed(11);
        let a = Runner::new(spec.clone()).unwrap().run();
        let b = Runner::new(spec).unwrap().run();
        assert_eq!(a.collector.records(), b.collector.records());
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn scenario_events_segment_the_run() {
        let spec = quick_spec(
            0.6,
            PolicyKind::Explicit {
                dispatcher: crate::dispatch::DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
                acceptance: srlb_server::PolicyConfig::Static { threshold: 4 },
            },
        )
        .at(1.0, ScenarioEvent::LbFailover);
        let mut spec = spec;
        spec.cluster.recover_flows = true;
        let outcome = Runner::new(spec).unwrap().run();
        assert_eq!(outcome.lb_stats.failovers, 1);
        assert_eq!(outcome.phases.len(), 2);
        assert!(outcome.dispatcher_name.contains("consistent"));
    }

    #[test]
    fn multi_lb_tier_spreads_flows_and_completes() {
        let spec = quick_spec(
            0.5,
            PolicyKind::Explicit {
                dispatcher: crate::dispatch::DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
                acceptance: srlb_server::PolicyConfig::Static { threshold: 4 },
            },
        )
        .with_lb_count(4);
        let outcome = Runner::new(spec).unwrap().run();
        assert_eq!(outcome.collector.len(), 400);
        assert_eq!(outcome.collector.completed_count(), 400);
        assert_eq!(outcome.per_lb_stats.len(), 4);
        // ECMP spreads new flows across every instance, and the tier-wide
        // aggregate is the merge of the per-instance counters.
        for (j, stats) in outcome.per_lb_stats.iter().enumerate() {
            assert!(stats.new_flows > 0, "LB {j} received no flows");
        }
        assert_eq!(
            outcome.lb_stats,
            LbStats::merged(outcome.per_lb_stats.iter().copied())
        );
        assert_eq!(outcome.lb_stats.new_flows, 400);
        assert_eq!(outcome.lb_stats.flows_learned, 400);
    }

    #[test]
    fn multi_lb_run_is_deterministic() {
        let spec = quick_spec(0.6, PolicyKind::Static { threshold: 4 })
            .with_lb_count(2)
            .with_seed(5);
        let a = Runner::new(spec.clone()).unwrap().run();
        let b = Runner::new(spec).unwrap().run();
        assert_eq!(a.collector.records(), b.collector.records());
        assert_eq!(a.per_lb_stats, b.per_lb_stats);
        assert_eq!(a.events_processed, b.events_processed);
    }

    #[test]
    fn lb_withdrawal_re_steers_onto_peers_without_breaking_flows() {
        // Two-instance tier with consistent-hash candidates and in-band
        // flow recovery: withdrawing one instance mid-run re-steers its
        // established flows onto a peer that has never seen them; the peer
        // re-hunts and every connection survives.
        let mut spec = ExperimentSpec {
            name: "remove-lb-test".to_string(),
            seed: 3,
            workload: WorkloadSpec::PoissonRate {
                rate_qps: 150.0,
                queries: 600,
                mean_service_ms: 20.0,
            },
            cluster: crate::spec::ClusterSpec::paper(),
            topology: TopologyModel::paper(),
            scenario: Vec::new(),
            policy: PolicyKind::Explicit {
                dispatcher: crate::dispatch::DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
                acceptance: srlb_server::PolicyConfig::Static { threshold: 4 },
            },
            request_delay_ms: 100.0,
            faults: FaultPlan::default(),
        };
        spec.cluster.lb_count = 2;
        spec.cluster.recover_flows = true;
        let spec = spec.at(2.0, ScenarioEvent::RemoveLb { lb: 1 });
        let outcome = Runner::new(spec).unwrap().run();

        assert_eq!(outcome.collector.len(), 600);
        assert_eq!(outcome.collector.completed_count(), 600, "zero loss");
        assert_eq!(outcome.phases.len(), 2);
        // The withdrawn instance saw flows before the reshuffle; the
        // survivor re-hunted the re-steered ones.
        assert!(outcome.per_lb_stats[1].new_flows > 0);
        assert!(outcome.per_lb_stats[0].rehunts > 0, "re-hunts expected");
        assert_eq!(outcome.lb_stats.missing_flow, 0);
    }

    #[test]
    fn every_exec_mode_produces_identical_outcomes() {
        // The full matrix on a churny spec: serial reference loop, batched
        // loop, and 2/4-way sharding must agree event for event.
        let spec = quick_spec(0.6, PolicyKind::Dynamic)
            .with_lb_count(2)
            .with_seed(9)
            .at(0.5, ScenarioEvent::RemoveServer { server: 3 })
            .at(1.0, ScenarioEvent::AddServer { server: 3 });
        let reference = Runner::new(spec.clone())
            .unwrap()
            .with_exec(ExecMode::SerialStep)
            .run();
        for exec in [
            ExecMode::Batched,
            ExecMode::Sharded { threads: 2 },
            ExecMode::Sharded { threads: 4 },
        ] {
            // Force the worker pool so sharded modes exercise the real
            // window protocol even on single-core test hosts.
            let outcome = Runner::new(spec.clone())
                .unwrap()
                .with_exec(exec)
                .with_pool_policy(PoolPolicy::Force)
                .run();
            assert_eq!(
                outcome.collector.records(),
                reference.collector.records(),
                "{exec:?} diverged from the serial loop"
            );
            assert_eq!(outcome.events_processed, reference.events_processed);
            assert_eq!(outcome.per_lb_stats, reference.per_lb_stats);
            assert_eq!(outcome.server_stats, reference.server_stats);
            assert_eq!(outcome.duration_seconds, reference.duration_seconds);
        }
    }

    #[test]
    fn shard_planning_strategies_produce_identical_outcomes() {
        // Placement is a throughput knob only: on a rack/zone topology the
        // topology-aware and round-robin plans differ (different shard
        // count and lookahead at 3 threads) yet must agree byte for byte.
        let mut spec = quick_spec(0.6, PolicyKind::Dynamic).with_seed(23);
        spec.topology = TopologyModel::rack_zone_default();
        let run = |planning: ShardPlanning| {
            Runner::new(spec.clone())
                .unwrap()
                .with_exec(ExecMode::Sharded { threads: 3 })
                .with_pool_policy(PoolPolicy::Force)
                .with_shard_planning(planning)
                .run()
        };
        let aware = run(ShardPlanning::TopologyAware);
        let rr = run(ShardPlanning::RoundRobin);
        assert_ne!(
            aware.shard_plan, rr.shard_plan,
            "the two strategies must actually produce different plans here"
        );
        assert_eq!(aware.collector.records(), rr.collector.records());
        assert_eq!(aware.events_processed, rr.events_processed);
        assert_eq!(aware.per_lb_stats, rr.per_lb_stats);
        assert_eq!(aware.server_stats, rr.server_stats);
        assert!(
            aware
                .shard_plan
                .as_deref()
                .is_some_and(|p| p.starts_with("topology-aware")),
            "plan summary records the strategy: {:?}",
            aware.shard_plan
        );
    }

    #[test]
    fn bounded_flow_table_run_evicts_and_stays_deterministic() {
        use crate::spec::FlowTableSpec;
        // A table far smaller than the flow count: the run must complete
        // under eviction pressure, report every eviction by cause, and stay
        // byte-identical across execution modes.
        let spec = quick_spec(0.6, PolicyKind::Static { threshold: 4 })
            .with_seed(13)
            .with_flow_table(FlowTableSpec {
                idle_timeout_s: 30.0,
                capacity: Some(32),
                shards: 4,
                sweep_interval_s: Some(5.0),
            });
        let outcome = Runner::new(spec.clone()).unwrap().run();
        assert_eq!(outcome.collector.len(), 400);
        let evicted = outcome.lb_stats.flow_evicted_expired
            + outcome.lb_stats.flow_evicted_idle
            + outcome.lb_stats.flow_evicted_active;
        assert!(evicted > 0, "32 slots for 400 flows must evict");
        assert!(outcome.lb_stats.flow_peak_occupancy > 0);
        assert!(outcome.lb_stats.flow_peak_occupancy <= 32);
        for exec in [ExecMode::SerialStep, ExecMode::Sharded { threads: 2 }] {
            let again = Runner::new(spec.clone())
                .unwrap()
                .with_exec(exec)
                .with_pool_policy(PoolPolicy::Force)
                .run();
            assert_eq!(again.collector.records(), outcome.collector.records());
            assert_eq!(again.lb_stats, outcome.lb_stats);
            assert_eq!(again.events_processed, outcome.events_processed);
        }
    }

    #[test]
    fn default_flow_table_surfaces_no_new_counters() {
        // The unbounded default table must keep `LbStats` free of the new
        // flow counters (they are serde-skipped at zero), so committed
        // artifacts stay byte-stable.
        let outcome = Runner::new(quick_spec(0.5, PolicyKind::Dynamic))
            .unwrap()
            .run();
        assert_eq!(outcome.lb_stats.flow_evicted_expired, 0);
        assert_eq!(outcome.lb_stats.flow_evicted_idle, 0);
        assert_eq!(outcome.lb_stats.flow_evicted_active, 0);
        assert_eq!(outcome.lb_stats.flow_peak_occupancy, 0);
    }

    #[test]
    fn load_aware_policy_runs_end_to_end_deterministically() {
        let spec = quick_spec(
            0.7,
            PolicyKind::LoadAware {
                pool: 4,
                threshold: 4,
            },
        )
        .with_seed(17);
        let outcome = Runner::new(spec.clone()).unwrap().run();
        assert_eq!(outcome.label, "SRla-p4c4");
        assert!(outcome.dispatcher_name.contains("load-aware"));
        assert_eq!(outcome.collector.len(), 400);
        assert!(outcome.collector.completed_count() > 0);
        for exec in [ExecMode::SerialStep, ExecMode::Sharded { threads: 2 }] {
            let again = Runner::new(spec.clone())
                .unwrap()
                .with_exec(exec)
                .with_pool_policy(PoolPolicy::Force)
                .run();
            assert_eq!(again.collector.records(), outcome.collector.records());
            assert_eq!(again.events_processed, outcome.events_processed);
        }
    }

    #[test]
    fn rack_zone_topology_runs_end_to_end() {
        let spec = quick_spec(0.4, PolicyKind::Static { threshold: 4 })
            .with_topology(TopologyModel::rack_zone_default());
        let outcome = Runner::new(spec).unwrap().run();
        assert_eq!(outcome.collector.len(), 400);
        assert!(outcome.collector.completed_count() > 0);
    }

    #[test]
    fn asymmetric_topology_changes_response_times_but_not_determinism() {
        let uniform = Runner::new(quick_spec(0.4, PolicyKind::RoundRobin))
            .unwrap()
            .run();
        let spec = quick_spec(0.4, PolicyKind::RoundRobin).with_topology(TopologyModel::RackZone {
            racks: 3,
            intra_rack_us: 50,
            cross_rack_us: 50,
            client_link_us: 5_000,
        });
        let remote = Runner::new(spec.clone()).unwrap().run();
        let remote2 = Runner::new(spec).unwrap().run();
        assert_eq!(remote.collector.records(), remote2.collector.records());
        // A 5 ms client edge adds ≥ 10 ms round trip to every response.
        let u = uniform.collector.summary(None).mean();
        let r = remote.collector.summary(None).mean();
        assert!(r > u + 10.0, "uniform mean {u} ms vs remote mean {r} ms");
    }

    #[test]
    fn lossy_run_recovers_every_request_via_retransmission() {
        use crate::spec::{FaultLink, LossSpec};
        // 2% loss on every link; default recovery policy.  Retransmission
        // must complete every request with no established-flow remaps.
        let spec = quick_spec(
            0.5,
            PolicyKind::Explicit {
                dispatcher: crate::dispatch::DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
                acceptance: srlb_server::PolicyConfig::Static { threshold: 4 },
            },
        )
        .with_seed(7)
        .with_faults(FaultPlan {
            loss: vec![LossSpec {
                link: FaultLink::default(),
                probability: 0.02,
            }],
            ..FaultPlan::default()
        });
        let outcome = Runner::new(spec.clone()).unwrap().run();
        assert_eq!(outcome.collector.len(), 400);
        assert_eq!(outcome.collector.completed_count(), 400, "zero give-ups");
        assert!(outcome.dropped_injected > 0, "losses must actually occur");
        assert!(outcome.retransmits > 0, "recovery must actually retransmit");
        assert_eq!(outcome.aborted, 0);
        assert_eq!(outcome.dropped_queue, 0);
        assert_eq!(outcome.dropped_link_down, 0);

        // And the lossy run is byte-identical across execution modes.
        for exec in [ExecMode::SerialStep, ExecMode::Sharded { threads: 2 }] {
            let again = Runner::new(spec.clone())
                .unwrap()
                .with_exec(exec)
                .with_pool_policy(PoolPolicy::Force)
                .run();
            assert_eq!(again.collector.records(), outcome.collector.records());
            assert_eq!(again.dropped_injected, outcome.dropped_injected);
            assert_eq!(again.retransmits, outcome.retransmits);
            assert_eq!(again.events_processed, outcome.events_processed);
        }
    }

    #[test]
    fn total_loss_aborts_gracefully_instead_of_hanging() {
        use crate::spec::{FaultLink, FaultNode, LossSpec};
        use srlb_net::RetransmitPolicy;
        // The client → LB direction loses everything: no SYN ever arrives,
        // every request must abort after exactly max_retries retransmits.
        let spec = quick_spec(0.5, PolicyKind::Static { threshold: 4 })
            .with_queries(50)
            .with_faults(FaultPlan {
                loss: vec![LossSpec {
                    link: FaultLink {
                        from: Some(FaultNode::Client),
                        to: None,
                    },
                    probability: 1.0,
                }],
                recovery: Some(RetransmitPolicy {
                    max_retries: 3,
                    ..RetransmitPolicy::default()
                }),
                ..FaultPlan::default()
            });
        let outcome = Runner::new(spec).unwrap().run();
        assert_eq!(outcome.collector.len(), 50);
        assert_eq!(outcome.aborted, 50, "every request gives up");
        assert_eq!(outcome.collector.completed_count(), 0);
        // 1 original + 3 retransmits per request, all lost.
        assert_eq!(outcome.retransmits, 150);
        assert_eq!(outcome.dropped_injected, 200);
    }

    #[test]
    fn slow_node_multiplier_stretches_response_times_deterministically() {
        use crate::spec::{FaultNode, SlowNodeSpec};
        let base = Runner::new(quick_spec(0.4, PolicyKind::RoundRobin))
            .unwrap()
            .run();
        // A 20× slower client edge adds latency to every round trip.
        let spec = quick_spec(0.4, PolicyKind::RoundRobin).with_faults(FaultPlan {
            slow_nodes: vec![SlowNodeSpec {
                node: FaultNode::Client,
                multiplier: 20.0,
            }],
            ..FaultPlan::default()
        });
        let slow = Runner::new(spec.clone()).unwrap().run();
        let again = Runner::new(spec).unwrap().run();
        assert_eq!(slow.collector.records(), again.collector.records());
        assert_eq!(slow.collector.completed_count(), 400);
        let b = base.collector.summary(None).mean();
        let s = slow.collector.summary(None).mean();
        assert!(s > b, "slowed client mean {s} ms vs baseline {b} ms");
    }

    #[test]
    fn empty_fault_plan_reproduces_the_fault_free_run_exactly() {
        // The zero-fault equivalence guard at the runner level: a spec
        // whose plan is empty must not perturb a single byte of the
        // outcome relative to a spec with no fault axis at all.
        let spec = quick_spec(0.6, PolicyKind::Dynamic).with_seed(11);
        let baseline = Runner::new(spec.clone()).unwrap().run();
        let with_empty_plan = Runner::new(spec.with_faults(FaultPlan::default()))
            .unwrap()
            .run();
        assert_eq!(
            baseline.collector.records(),
            with_empty_plan.collector.records()
        );
        assert_eq!(baseline.events_processed, with_empty_plan.events_processed);
        assert_eq!(baseline.dropped_injected, 0);
        assert_eq!(baseline.retransmits, 0);
    }

    #[test]
    fn trace_workload_replays_explicit_requests() {
        let requests = srlb_workload::PoissonWorkload::new(
            50.0,
            100,
            srlb_workload::ServiceTime::Exponential { mean_ms: 10.0 },
        )
        .generate(3);
        let mut spec = quick_spec(0.5, PolicyKind::RoundRobin);
        spec.workload = WorkloadSpec::Trace { requests };
        let outcome = Runner::new(spec).unwrap().run();
        assert_eq!(outcome.collector.len(), 100);
    }
}
