//! The unified, declarative experiment schema.
//!
//! An [`ExperimentSpec`] is the single description every SRLB experiment
//! runs from: a *workload* (streamed, never pre-materialised), a *cluster*,
//! a *topology* model, an optional *scenario* (a time-ordered schedule of
//! control events), and a *policy*.  It is plain serde data, so any
//! experiment — a paper figure point, a dynamic-cluster scenario, or a
//! cross product of both — can be committed as JSON and replayed
//! bit-for-bit with [`Runner`](crate::runner::Runner) (see
//! `examples/specs/` at the workspace root).
//!
//! This module subsumes what used to be three disjoint schemas:
//! `ExperimentConfig` (paper figures), `TestbedConfig` (cluster wiring) and
//! the scenario crate's schedule.  Those types survive as thin
//! compatibility shims over this one.

use serde::{Deserialize, Serialize};

use srlb_server::PolicyConfig;
use srlb_sim::TopologyModel;
use srlb_workload::{
    requests_into_stream, BoxedWorkload, PoissonWorkload, Request, ServiceTime, WikipediaWorkload,
};

use crate::calibration::analytic_lambda0;
use crate::dispatch::{DispatcherConfig, MAX_CANDIDATES};
use crate::flow_state::{FlowState, FlowStateConfig, DEFAULT_IDLE_TIMEOUT_SECS, DEFAULT_SHARDS};
use crate::lb_node::MAX_RECOVERY_CANDIDATES;
use crate::CoreError;

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

/// The load-balancing policy under test, named as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// `RR`: each query is assigned to one random server, no Service
    /// Hunting.
    RoundRobin,
    /// `SRc`: Service Hunting over two random candidates with the static
    /// acceptance threshold `c`.
    Static {
        /// The busy-thread threshold `c`.
        threshold: usize,
    },
    /// `SRdyn`: Service Hunting with the dynamic threshold policy.
    Dynamic,
    /// Service Hunting over the two least-loaded of `pool` hash-derived
    /// candidates, ranked by the EWMA of the load hints servers piggyback
    /// on acceptance SYN-ACKs and ownership adverts, with the static
    /// acceptance threshold as the server-side backstop.
    LoadAware {
        /// Number of hash-derived candidates ranked by load (at most
        /// [`MAX_CANDIDATES`]).
        pool: usize,
        /// The busy-thread threshold servers still enforce.
        threshold: usize,
    },
    /// Service Hunting with an explicit candidate count and policy (used by
    /// the ablation benches).
    Custom {
        /// Number of candidates in the SR list.
        candidates: usize,
        /// Per-server acceptance policy.
        policy: PolicyConfig,
    },
    /// Fully explicit pairing of a candidate-selection dispatcher and a
    /// per-server acceptance policy — the form the dynamic-cluster
    /// scenarios use (consistent-hash / Maglev selection).
    Explicit {
        /// Candidate-selection policy at the load balancer.
        dispatcher: DispatcherConfig,
        /// Per-server acceptance policy.
        acceptance: PolicyConfig,
    },
}

impl PolicyKind {
    /// The display name used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::RoundRobin => "RR".to_string(),
            PolicyKind::Static { threshold } => format!("SR{threshold}"),
            PolicyKind::Dynamic => "SRdyn".to_string(),
            PolicyKind::LoadAware { pool, threshold } => format!("SRla-p{pool}c{threshold}"),
            PolicyKind::Custom { candidates, policy } => {
                format!("custom-k{}-{}", candidates, policy.name())
            }
            PolicyKind::Explicit {
                dispatcher,
                acceptance,
            } => format!("explicit-k{}-{}", dispatcher.fanout(), acceptance.name()),
        }
    }

    /// The dispatcher this policy requires.
    pub fn dispatcher(&self) -> DispatcherConfig {
        match self {
            PolicyKind::RoundRobin => DispatcherConfig::Random { k: 1 },
            PolicyKind::Static { .. } | PolicyKind::Dynamic => DispatcherConfig::Random { k: 2 },
            PolicyKind::LoadAware { pool, .. } => DispatcherConfig::LoadAware {
                vnodes: 64,
                pool: *pool,
                k: 2,
            },
            PolicyKind::Custom { candidates, .. } => DispatcherConfig::Random { k: *candidates },
            PolicyKind::Explicit { dispatcher, .. } => *dispatcher,
        }
    }

    /// The per-server acceptance policy this policy requires.
    pub fn acceptance_policy(&self) -> PolicyConfig {
        match self {
            // With a single candidate the policy is never consulted.
            PolicyKind::RoundRobin => PolicyConfig::AlwaysAccept,
            PolicyKind::Static { threshold } | PolicyKind::LoadAware { threshold, .. } => {
                PolicyConfig::Static {
                    threshold: *threshold,
                }
            }
            PolicyKind::Dynamic => PolicyConfig::paper_dynamic(),
            PolicyKind::Custom { policy, .. } => *policy,
            PolicyKind::Explicit { acceptance, .. } => *acceptance,
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario schedule
// ---------------------------------------------------------------------------

/// A control action injected into a running experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenarioEvent {
    /// Brings up the backend with the given index (fresh state), which must
    /// currently be down, and rebuilds the dispatcher over the grown set.
    AddServer {
        /// Index of the server (must be `< max_servers`).
        server: u32,
    },
    /// Removes the backend with the given index abruptly (its established
    /// connections are lost) and rebuilds the dispatcher over the shrunk
    /// set.
    RemoveServer {
        /// Index of the server to remove.
        server: u32,
    },
    /// Fails every advertised load-balancer instance over to a cold standby
    /// at the same address: the flow tables are lost and must be
    /// reconstructed in-band.  (With `lb_count = 1` this is the classic
    /// single-LB failover.)
    LbFailover,
    /// Advertises load-balancer instance `lb` (which must currently be
    /// withdrawn) back into the ECMP tier: it resumes receiving the flows
    /// it wins under resilient hashing, stealing them from peers.
    AddLb {
        /// Index of the instance (must be `< lb_count`).
        lb: u32,
    },
    /// Withdraws load-balancer instance `lb` from the ECMP tier — the
    /// reshuffle event: packets already in the fabric still deliver, but
    /// every subsequent packet of the flows it carried is re-steered to a
    /// surviving peer that has never seen them (and must re-hunt them when
    /// flow recovery is enabled).
    RemoveLb {
        /// Index of the instance to withdraw.
        lb: u32,
    },
    /// Re-provisions a live backend's capacity (workers and cores) without
    /// interrupting running requests.
    SetCapacity {
        /// Index of the server to re-provision.
        server: u32,
        /// New worker-thread count.
        workers: usize,
        /// New CPU core count.
        cores: usize,
    },
}

impl ScenarioEvent {
    /// A short label naming the event (used for phase labels in reports).
    pub fn label(&self) -> String {
        match self {
            ScenarioEvent::AddServer { server } => format!("add-server-{server}"),
            ScenarioEvent::RemoveServer { server } => format!("remove-server-{server}"),
            ScenarioEvent::LbFailover => "lb-failover".to_string(),
            ScenarioEvent::AddLb { lb } => format!("add-lb-{lb}"),
            ScenarioEvent::RemoveLb { lb } => format!("remove-lb-{lb}"),
            ScenarioEvent::SetCapacity {
                server,
                workers,
                cores,
            } => format!("set-capacity-{server}-{workers}w{cores}c"),
        }
    }
}

/// A [`ScenarioEvent`] scheduled at an absolute simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the event fires, in seconds since the start of the run.  All
    /// packet events at or before this instant are delivered first.
    pub at_seconds: f64,
    /// The control action.
    pub event: ScenarioEvent,
}

/// Initial capacity override for one backend (heterogeneous clusters).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityOverride {
    /// Index of the server.
    pub server: u32,
    /// Worker threads (instead of the cluster-wide default).
    pub workers: usize,
    /// CPU cores (instead of the cluster-wide default).
    pub cores: usize,
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

/// Serde default for [`ClusterSpec::lb_count`]: the paper's single load
/// balancer.  Public so every schema carrying an `lb_count` field (e.g.
/// the scenario crate's cluster spec) shares one definition of the
/// "omitted means 1" contract.
pub fn default_lb_count() -> usize {
    1
}

/// Serde skip predicate for [`ClusterSpec::lb_count`]: the degenerate
/// single-LB tier is not serialised, keeping committed specs byte-stable.
pub fn lb_count_is_one(n: &usize) -> bool {
    *n == 1
}

fn default_idle_timeout_s() -> f64 {
    DEFAULT_IDLE_TIMEOUT_SECS as f64
}

fn idle_timeout_is_default(s: &f64) -> bool {
    *s == DEFAULT_IDLE_TIMEOUT_SECS as f64
}

fn default_flow_shards() -> usize {
    DEFAULT_SHARDS
}

fn shards_is_default(n: &usize) -> bool {
    *n == DEFAULT_SHARDS
}

/// Serde skip predicate for [`ClusterSpec::flow_table`]: the unbounded
/// default table is not serialised, so committed specs written before the
/// flow-state subsystem existed parse and re-serialise byte-identically
/// (the [`lb_count_is_one`] precedent).
pub fn flow_table_is_default(ft: &FlowTableSpec) -> bool {
    *ft == FlowTableSpec::default()
}

/// Configuration of each load balancer's flow-stickiness table.
///
/// The default — the 5-minute idle timeout, no capacity bound, no periodic
/// sweep — matches the table every spec ran with before this axis existed
/// and is omitted from serialised specs entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowTableSpec {
    /// Idle timeout in seconds after which an entry expires.
    #[serde(
        default = "default_idle_timeout_s",
        skip_serializing_if = "idle_timeout_is_default"
    )]
    pub idle_timeout_s: f64,
    /// Hard bound on live entries per load balancer; `None` is unbounded.
    /// When full, learning a new flow evicts the least-recently-touched
    /// entry (preferring expired, then long-idle ones), and every eviction
    /// is counted by cause in [`crate::lb_node::LbStats`].
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub capacity: Option<usize>,
    /// Number of power-of-two shards the table is split into.
    #[serde(
        default = "default_flow_shards",
        skip_serializing_if = "shards_is_default"
    )]
    pub shards: usize,
    /// Interval of the amortised incremental expiry sweep, in seconds;
    /// `None` expires lazily on access only.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sweep_interval_s: Option<f64>,
}

impl Default for FlowTableSpec {
    fn default() -> Self {
        FlowTableSpec {
            idle_timeout_s: default_idle_timeout_s(),
            capacity: None,
            shards: DEFAULT_SHARDS,
            sweep_interval_s: None,
        }
    }
}

impl FlowTableSpec {
    /// Builds the configured [`FlowState`] table.
    pub fn build(&self) -> FlowState {
        let mut config = FlowStateConfig::new()
            .with_idle_timeout(srlb_sim::SimDuration::from_secs_f64(self.idle_timeout_s))
            .with_shards(self.shards);
        if let Some(capacity) = self.capacity {
            config = config.with_capacity(capacity);
        }
        FlowState::with_config(config)
    }

    /// The periodic sweep interval, if configured.
    pub fn sweep_interval(&self) -> Option<srlb_sim::SimDuration> {
        self.sweep_interval_s
            .map(srlb_sim::SimDuration::from_secs_f64)
    }

    /// Checks the table parameters.
    fn validate(&self) -> Result<(), CoreError> {
        let bad = |msg: String| Err(CoreError::InvalidConfig(msg));
        if !self.idle_timeout_s.is_finite() || self.idle_timeout_s <= 0.0 {
            return bad(format!(
                "flow-table idle timeout {} s must be positive",
                self.idle_timeout_s
            ));
        }
        if self.capacity == Some(0) {
            return bad("a bounded flow table needs capacity for at least one flow".into());
        }
        if self.shards == 0 || !self.shards.is_power_of_two() {
            return bad(format!(
                "flow-table shard count {} must be a power of two",
                self.shards
            ));
        }
        if let Some(sweep) = self.sweep_interval_s {
            if !sweep.is_finite() || sweep <= 0.0 {
                return bad(format!(
                    "flow-table sweep interval {sweep} s must be positive"
                ));
            }
        }
        Ok(())
    }
}

/// Static description of the cluster an experiment runs on.
///
/// The candidate-selection and acceptance policies live in
/// [`ExperimentSpec::policy`], not here: the cluster is the *capacity*
/// axis, the policy is the *algorithm* axis, and specs sweep them
/// independently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Backends alive when the run starts.
    pub initial_servers: usize,
    /// Upper bound on the backend count (fixes the address/node-id layout;
    /// `AddServer` events may only name indices below this).
    pub max_servers: usize,
    /// Default worker threads per backend.
    pub workers: usize,
    /// Default CPU cores per backend.
    pub cores: usize,
    /// TCP backlog per backend.
    pub backlog: usize,
    /// Per-backend initial capacity overrides (heterogeneous clusters).
    pub capacity_overrides: Vec<CapacityOverride>,
    /// Number of VIPs sharing the cluster (requests are assigned
    /// round-robin by request id).
    pub vips: u32,
    /// Number of load-balancer instances in the ECMP-steered tier fronting
    /// the cluster.  All instances advertise the same anycast address and
    /// VIPs; flows are spread across them by deterministic resilient ECMP
    /// hashing of the 5-tuple ([`srlb_sim::ecmp_steer`]).  `1` — the
    /// paper's single-LB testbed — is the serde default and is omitted
    /// from serialised specs, so committed spec JSONs stay byte-stable.
    #[serde(default = "default_lb_count", skip_serializing_if = "lb_count_is_one")]
    pub lb_count: usize,
    /// Per-LB flow-stickiness table configuration (idle timeout, capacity
    /// bound, shard count, sweep interval).  The unbounded default is
    /// omitted from serialised specs, so committed spec JSONs stay
    /// byte-stable.
    #[serde(default, skip_serializing_if = "flow_table_is_default")]
    pub flow_table: FlowTableSpec,
    /// Whether the load balancers reconstruct lost flow-table entries
    /// in-band (re-hunt on miss + server ownership adverts).
    pub recover_flows: bool,
    /// Whether servers record per-change load samples (Figure 4).
    pub record_load: bool,
}

impl ClusterSpec {
    /// The paper's testbed: 12 servers × 32 workers × 2 cores, backlog 128.
    pub fn paper() -> Self {
        ClusterSpec {
            initial_servers: 12,
            max_servers: 12,
            workers: 32,
            cores: 2,
            backlog: 128,
            capacity_overrides: Vec::new(),
            vips: 1,
            lb_count: 1,
            flow_table: FlowTableSpec::default(),
            recover_flows: false,
            record_load: false,
        }
    }

    /// The initial `(workers, cores)` of server `index`, honouring
    /// overrides.
    pub fn capacity_of(&self, index: u32) -> (usize, usize) {
        self.capacity_overrides
            .iter()
            .find(|o| o.server == index)
            .map_or((self.workers, self.cores), |o| (o.workers, o.cores))
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        Self::paper()
    }
}

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

/// The workload driven through the cluster, streamed on demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The Poisson workload of Section V, parameterised by the normalised
    /// rate ρ.
    Poisson {
        /// Normalised request rate ρ = λ/λ₀.
        rho: f64,
        /// Maximum sustainable rate λ₀ in queries per second; `None` uses
        /// the analytic capacity of the configured cluster.
        lambda0: Option<f64>,
        /// Number of queries (the paper uses 20 000).
        queries: usize,
        /// Mean (exponential) service time in milliseconds (the paper uses
        /// 100 ms).
        mean_service_ms: f64,
    },
    /// A Poisson workload at an explicit arrival rate (the form the
    /// dynamic-cluster scenarios use).
    PoissonRate {
        /// Arrival rate in queries per second.
        rate_qps: f64,
        /// Total number of queries.
        queries: usize,
        /// Mean (exponential) service time in milliseconds.
        mean_service_ms: f64,
    },
    /// The synthetic Wikipedia replay of Section VI.
    Wikipedia {
        /// Trace duration in hours (the paper replays 24 hours).
        hours: f64,
        /// Fraction of the peak load to replay (the paper uses 50%).
        load_fraction: f64,
    },
    /// An explicit, pre-generated trace.
    Trace {
        /// The requests to replay.
        requests: Vec<Request>,
    },
}

impl WorkloadSpec {
    /// The λ₀ a `Poisson` workload resolves against `cluster` (explicit
    /// value or the analytic cluster capacity); `None` for other variants.
    pub fn effective_lambda0(&self, cluster: &ClusterSpec) -> Option<f64> {
        match self {
            WorkloadSpec::Poisson {
                lambda0,
                mean_service_ms,
                ..
            } => Some(lambda0.unwrap_or_else(|| {
                analytic_lambda0(cluster.initial_servers, cluster.cores, *mean_service_ms)
            })),
            _ => None,
        }
    }

    /// Opens the workload as a request stream seeded with `seed`.
    /// `cluster` resolves the analytic λ₀ of normalised-rate Poisson
    /// workloads.
    ///
    /// The generator variants hold O(1) state; the `Trace` variant clones
    /// its materialised request list so the spec stays reusable — prefer a
    /// generator variant for very long traces.
    pub fn stream(&self, seed: u64, cluster: &ClusterSpec) -> BoxedWorkload {
        match self {
            WorkloadSpec::Poisson {
                rho,
                queries,
                mean_service_ms,
                ..
            } => {
                let lambda0 = self
                    .effective_lambda0(cluster)
                    // srlb-lint: allow(panic-hygiene) -- effective_lambda0 returns Some for every Poisson variant, and this arm only matches Poisson
                    .expect("poisson workload has a lambda0");
                Box::new(
                    PoissonWorkload::paper(*rho, lambda0)
                        .with_queries(*queries)
                        .with_service(ServiceTime::Exponential {
                            mean_ms: *mean_service_ms,
                        })
                        .stream(seed),
                )
            }
            WorkloadSpec::PoissonRate {
                rate_qps,
                queries,
                mean_service_ms,
            } => Box::new(
                PoissonWorkload::new(
                    *rate_qps,
                    *queries,
                    ServiceTime::Exponential {
                        mean_ms: *mean_service_ms,
                    },
                )
                .stream(seed),
            ),
            WorkloadSpec::Wikipedia {
                hours,
                load_fraction,
            } => Box::new(
                WikipediaWorkload::paper()
                    .with_duration_hours(*hours)
                    .with_load_fraction(*load_fraction)
                    .stream(seed),
            ),
            WorkloadSpec::Trace { requests } => Box::new(requests_into_stream(requests.clone())),
        }
    }

    /// Checks the workload's parameters.
    fn validate(&self) -> Result<(), CoreError> {
        let bad = |msg: String| Err(CoreError::InvalidConfig(msg));
        match self {
            WorkloadSpec::Poisson {
                rho,
                lambda0,
                queries,
                mean_service_ms,
            } => {
                if !rho.is_finite() || *rho <= 0.0 {
                    return bad(format!("poisson rho {rho} must be positive"));
                }
                if let Some(l0) = lambda0 {
                    if !l0.is_finite() || *l0 <= 0.0 {
                        return bad(format!("poisson lambda0 {l0} must be positive"));
                    }
                }
                if *queries == 0 {
                    return bad("the workload needs at least one query".into());
                }
                if !mean_service_ms.is_finite() || *mean_service_ms <= 0.0 {
                    return bad("poisson mean service time must be positive".into());
                }
                Ok(())
            }
            WorkloadSpec::PoissonRate {
                rate_qps,
                queries,
                mean_service_ms,
            } => {
                if *queries == 0 || !rate_qps.is_finite() || *rate_qps <= 0.0 {
                    return bad("the workload needs at least one query at a positive rate".into());
                }
                if !mean_service_ms.is_finite() || *mean_service_ms <= 0.0 {
                    return bad("poisson mean service time must be positive".into());
                }
                Ok(())
            }
            WorkloadSpec::Wikipedia {
                hours,
                load_fraction,
            } => {
                if !hours.is_finite() || *hours <= 0.0 {
                    return bad("wikipedia trace duration must be positive".into());
                }
                if !load_fraction.is_finite() || *load_fraction <= 0.0 {
                    return bad("wikipedia load fraction must be positive".into());
                }
                Ok(())
            }
            WorkloadSpec::Trace { requests } => {
                // The guard the eager client constructor used to enforce:
                // without it an unsorted or gap-id trace would run to
                // completion with silently dropped packets (ids map to
                // client addresses the directory never registered).
                if !srlb_workload::request::is_well_formed(requests) {
                    return bad(
                        "trace requests must be sorted by arrival time with increasing ids".into(),
                    );
                }
                if let Some(last) = requests.last() {
                    if last.id >= requests.len() as u64 {
                        return bad(format!(
                            "trace ids must be contiguous from 0 (last id {} for {} requests)",
                            last.id,
                            requests.len()
                        ));
                    }
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

/// A role-based endpoint in a [`FaultPlan`]: specs name the client, a
/// load-balancer instance or a backend rather than raw simulator node ids,
/// and the runner lowers these to `NodeId`s once the layout is fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultNode {
    /// The traffic-generating client.
    Client,
    /// Load-balancer instance `index` (must be `< lb_count`).
    Lb {
        /// Index into the LB tier.
        index: usize,
    },
    /// Backend server `index` (must be `< max_servers`).
    Server {
        /// Index into the backend set.
        index: usize,
    },
}

impl FaultNode {
    /// The simulator node id of this endpoint under the runner's layout.
    pub fn resolve(
        &self,
        client: srlb_sim::NodeId,
        lbs: &[srlb_sim::NodeId],
        servers: &[srlb_sim::NodeId],
    ) -> srlb_sim::NodeId {
        match *self {
            FaultNode::Client => client,
            FaultNode::Lb { index } => lbs[index],
            FaultNode::Server { index } => servers[index],
        }
    }

    /// Validates the endpoint's index against the cluster shape.
    fn check(&self, cluster: &ClusterSpec) -> Result<(), CoreError> {
        let bad = |msg: String| Err(CoreError::InvalidConfig(msg));
        match *self {
            FaultNode::Client => Ok(()),
            FaultNode::Lb { index } if index >= cluster.lb_count => bad(format!(
                "fault endpoint names unknown load balancer {index}"
            )),
            FaultNode::Server { index } if index >= cluster.max_servers => {
                bad(format!("fault endpoint names unknown server {index}"))
            }
            _ => Ok(()),
        }
    }
}

/// A directed link pattern between role-based endpoints; `None` endpoints
/// are wildcards (and are omitted from serialised specs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultLink {
    /// Sending endpoint (`None` matches any sender).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub from: Option<FaultNode>,
    /// Receiving endpoint (`None` matches any receiver).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub to: Option<FaultNode>,
}

impl FaultLink {
    /// `true` for the double-wildcard pattern (the `Default`), which is
    /// omitted from serialised specs so defaulted and explicit
    /// match-anything links produce identical bytes.
    pub fn is_any(&self) -> bool {
        self.from.is_none() && self.to.is_none()
    }
}

/// Independent per-message loss on matching links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossSpec {
    /// Which links the rule applies to.
    #[serde(default, skip_serializing_if = "FaultLink::is_any")]
    pub link: FaultLink,
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
}

/// Deterministically drops the `packet`-th message delivered over one
/// concrete link, once (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneShotDropSpec {
    /// Sending endpoint.
    pub from: FaultNode,
    /// Receiving endpoint.
    pub to: FaultNode,
    /// 1-based index of the doomed message among the link's deliveries.
    pub packet: u64,
}

/// Matching links drop every message inside the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownWindowSpec {
    /// Which links go down.
    #[serde(default, skip_serializing_if = "FaultLink::is_any")]
    pub link: FaultLink,
    /// Start of the outage, in seconds since the start of the run
    /// (inclusive).
    pub from_seconds: f64,
    /// End of the outage, in seconds (exclusive).
    pub until_seconds: f64,
}

/// A bounded FIFO on one concrete link: finite capacity, tail drop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueSpec {
    /// Sending endpoint.
    pub from: FaultNode,
    /// Receiving endpoint.
    pub to: FaultNode,
    /// Maximum number of queued messages before tail drop.
    pub capacity: u64,
    /// Drain rate in packets per second.
    pub drain_pps: f64,
}

/// Multiplies the latency of every link touching one node — a degraded NIC
/// or an oversubscribed hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowNodeSpec {
    /// The slowed node.
    pub node: FaultNode,
    /// Latency multiplier (must be positive; values below 1 speed the node
    /// up, which is occasionally useful for asymmetry experiments).
    pub multiplier: f64,
}

/// The fault-injection axis of an experiment: what the network does to the
/// experiment's packets, and how the client recovers.
///
/// The default (empty) plan injects nothing, enables no retransmission and
/// is omitted from serialised specs entirely — committed spec JSONs written
/// before the fault layer existed parse and re-serialise byte-identically
/// (the [`ClusterSpec::lb_count`] precedent).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probabilistic per-link loss rules.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub loss: Vec<LossSpec>,
    /// Deterministic one-shot drops.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub drops: Vec<OneShotDropSpec>,
    /// Link down/up windows.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub down: Vec<DownWindowSpec>,
    /// Per-link bounded queues.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub queues: Vec<QueueSpec>,
    /// Slow-node latency multipliers.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub slow_nodes: Vec<SlowNodeSpec>,
    /// End-to-end recovery policy.  `None` with faults present uses
    /// [`RetransmitPolicy::default`]; on an empty plan no retransmission
    /// machinery is enabled at all.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recovery: Option<srlb_net::RetransmitPolicy>,
}

/// Serde skip predicate for [`ExperimentSpec::faults`]; public so other
/// schemas embedding a `FaultPlan` (e.g. the scenario crate) share the
/// "omitted means no faults" contract.
pub fn fault_plan_is_empty(plan: &FaultPlan) -> bool {
    plan.is_empty()
}

impl FaultPlan {
    /// Whether the plan injects nothing and configures no recovery.
    pub fn is_empty(&self) -> bool {
        self.loss.is_empty()
            && self.drops.is_empty()
            && self.down.is_empty()
            && self.queues.is_empty()
            && self.slow_nodes.is_empty()
            && self.recovery.is_none()
    }

    /// Whether the plan can actually lose or delay packets (as opposed to
    /// only configuring recovery).
    pub fn injects_faults(&self) -> bool {
        !self.loss.is_empty()
            || !self.drops.is_empty()
            || !self.down.is_empty()
            || !self.queues.is_empty()
            || !self.slow_nodes.is_empty()
    }

    /// The retransmission policy a non-empty plan runs with: the explicit
    /// `recovery` policy, or the default.
    pub fn effective_recovery(&self) -> srlb_net::RetransmitPolicy {
        self.recovery.unwrap_or_default()
    }

    /// Checks the plan's parameters against the cluster shape.
    fn validate(&self, cluster: &ClusterSpec) -> Result<(), CoreError> {
        let bad = |msg: String| Err(CoreError::InvalidConfig(msg));
        for rule in &self.loss {
            if !rule.probability.is_finite() || !(0.0..=1.0).contains(&rule.probability) {
                return bad(format!(
                    "loss probability {} must be within [0, 1]",
                    rule.probability
                ));
            }
            for end in [rule.link.from, rule.link.to].into_iter().flatten() {
                end.check(cluster)?;
            }
        }
        for drop in &self.drops {
            if drop.packet == 0 {
                return bad("one-shot drop indices are 1-based; 0 names no packet".into());
            }
            drop.from.check(cluster)?;
            drop.to.check(cluster)?;
        }
        for window in &self.down {
            if !window.from_seconds.is_finite()
                || !window.until_seconds.is_finite()
                || window.from_seconds < 0.0
                || window.until_seconds <= window.from_seconds
            {
                return bad(format!(
                    "down window [{}, {}) s is empty or inverted",
                    window.from_seconds, window.until_seconds
                ));
            }
            for end in [window.link.from, window.link.to].into_iter().flatten() {
                end.check(cluster)?;
            }
        }
        for queue in &self.queues {
            if queue.capacity == 0 {
                return bad("a bounded queue needs capacity for at least one message".into());
            }
            if !queue.drain_pps.is_finite() || queue.drain_pps <= 0.0 {
                return bad(format!(
                    "queue drain rate {} pps must be positive",
                    queue.drain_pps
                ));
            }
            queue.from.check(cluster)?;
            queue.to.check(cluster)?;
        }
        for slow in &self.slow_nodes {
            if !slow.multiplier.is_finite() || slow.multiplier <= 0.0 {
                return bad(format!(
                    "slow-node multiplier {} must be positive",
                    slow.multiplier
                ));
            }
            slow.node.check(cluster)?;
        }
        if let Some(recovery) = &self.recovery {
            recovery.validate().map_err(CoreError::InvalidConfig)?;
        }
        Ok(())
    }

    /// Lowers the role-based plan to the simulator's [`FaultConfig`]
    /// (`srlb_sim::FaultConfig`) under the runner's node layout.  Slow
    /// nodes are not part of the delivery-path config — the runner folds
    /// them into the topology before the network is built — and `recovery`
    /// configures the client, not the network.
    pub fn to_fault_config(
        &self,
        client: srlb_sim::NodeId,
        lbs: &[srlb_sim::NodeId],
        servers: &[srlb_sim::NodeId],
    ) -> srlb_sim::FaultConfig {
        let link = |l: &FaultLink| srlb_sim::LinkMatch {
            from: l.from.map(|n| n.resolve(client, lbs, servers)),
            to: l.to.map(|n| n.resolve(client, lbs, servers)),
        };
        srlb_sim::FaultConfig {
            loss: self
                .loss
                .iter()
                .map(|r| srlb_sim::LossRule {
                    link: link(&r.link),
                    probability: r.probability,
                })
                .collect(),
            drops: self
                .drops
                .iter()
                .map(|d| srlb_sim::OneShotDrop {
                    from: d.from.resolve(client, lbs, servers),
                    to: d.to.resolve(client, lbs, servers),
                    packet: d.packet,
                })
                .collect(),
            down: self
                .down
                .iter()
                .map(|w| srlb_sim::DownWindow {
                    link: link(&w.link),
                    down_from: srlb_sim::SimTime::from_secs_f64(w.from_seconds),
                    down_until: srlb_sim::SimTime::from_secs_f64(w.until_seconds),
                })
                .collect(),
            queues:
                self.queues
                    .iter()
                    .map(|q| srlb_sim::QueueRule {
                        from: q.from.resolve(client, lbs, servers),
                        to: q.to.resolve(client, lbs, servers),
                        capacity: q.capacity,
                        service: srlb_sim::SimDuration::from_nanos(
                            (1.0e9 / q.drain_pps).round() as u64
                        ),
                    })
                    .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// The spec itself
// ---------------------------------------------------------------------------

/// A complete, declarative experiment:
/// `workload × cluster × topology × scenario × policy`.
///
/// Every axis is independent, so the spec space is a cross product rather
/// than a set of hand-wired pairs — e.g. a Wikipedia replay through an
/// LB-failover schedule on a rack-asymmetric topology is just a spec, not
/// new driver code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Name used in reports and file names.
    pub name: String,
    /// Random seed (workload generation and candidate selection).
    pub seed: u64,
    /// The workload, streamed on demand.
    pub workload: WorkloadSpec,
    /// The cluster description.
    pub cluster: ClusterSpec,
    /// The link-latency model.
    pub topology: TopologyModel,
    /// Control events, sorted by time; empty for a static cluster (the
    /// degenerate single-segment run).
    pub scenario: Vec<TimedEvent>,
    /// The load-balancing policy under test.
    pub policy: PolicyKind,
    /// Client think time between the handshake completing and the HTTP
    /// request, in milliseconds.  Non-zero values keep connections
    /// *established but quiescent* for a realistic window — the state a
    /// load-balancer failover actually disrupts.
    pub request_delay_ms: f64,
    /// The fault-injection axis: what the network does to the experiment's
    /// packets, and how the client recovers.  The empty default is skipped
    /// when serialising, so fault-free specs are byte-identical to those
    /// written before the fault layer existed.
    #[serde(default, skip_serializing_if = "fault_plan_is_empty")]
    pub faults: FaultPlan,
}

impl ExperimentSpec {
    /// The paper's Poisson experiment at normalised rate `rho` with the
    /// given policy: 12 servers × 32 workers, 20 000 queries, exp(100 ms)
    /// service.
    pub fn poisson_paper(rho: f64, policy: PolicyKind) -> Self {
        ExperimentSpec {
            name: format!("poisson-rho{rho:.2}-{}", policy.label()),
            seed: 1,
            workload: WorkloadSpec::Poisson {
                rho,
                lambda0: None,
                queries: 20_000,
                mean_service_ms: 100.0,
            },
            cluster: ClusterSpec::paper(),
            topology: TopologyModel::paper(),
            scenario: Vec::new(),
            policy,
            request_delay_ms: 0.0,
            faults: FaultPlan::default(),
        }
    }

    /// The paper's Wikipedia replay (24 hours at 50% of peak) with the
    /// given policy.
    pub fn wikipedia_paper(policy: PolicyKind) -> Self {
        ExperimentSpec {
            name: format!("wikipedia-{}", policy.label()),
            seed: 1,
            workload: WorkloadSpec::Wikipedia {
                hours: 24.0,
                load_fraction: 0.5,
            },
            cluster: ClusterSpec::paper(),
            topology: TopologyModel::paper(),
            scenario: Vec::new(),
            policy,
            request_delay_ms: 0.0,
            faults: FaultPlan::default(),
        }
    }

    /// Overrides the name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Overrides the random seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the query count of Poisson workloads (builder style); no
    /// effect on other workloads.
    pub fn with_queries(mut self, n: usize) -> Self {
        match &mut self.workload {
            WorkloadSpec::Poisson { queries, .. } | WorkloadSpec::PoissonRate { queries, .. } => {
                *queries = n;
            }
            _ => {}
        }
        self
    }

    /// Overrides the Wikipedia trace duration in hours (builder style); no
    /// effect on other workloads.
    pub fn with_hours(mut self, h: f64) -> Self {
        if let WorkloadSpec::Wikipedia { hours, .. } = &mut self.workload {
            *hours = h;
        }
        self
    }

    /// Overrides the cluster size, keeping `max_servers` in lock-step when
    /// it matched (builder style).
    pub fn with_servers(mut self, servers: usize) -> Self {
        if self.cluster.max_servers == self.cluster.initial_servers {
            self.cluster.max_servers = servers;
        }
        self.cluster.initial_servers = servers;
        self
    }

    /// Overrides the load-balancer tier size (builder style).
    pub fn with_lb_count(mut self, lb_count: usize) -> Self {
        self.cluster.lb_count = lb_count;
        self
    }

    /// Overrides the flow-table configuration (builder style).
    pub fn with_flow_table(mut self, flow_table: FlowTableSpec) -> Self {
        self.cluster.flow_table = flow_table;
        self
    }

    /// Overrides the topology model (builder style).
    pub fn with_topology(mut self, topology: TopologyModel) -> Self {
        self.topology = topology;
        self
    }

    /// Enables per-server load recording (builder style).
    pub fn with_load_recording(mut self) -> Self {
        self.cluster.record_load = true;
        self
    }

    /// Sets the client think time in milliseconds (builder style).
    pub fn with_request_delay_ms(mut self, ms: f64) -> Self {
        self.request_delay_ms = ms;
        self
    }

    /// Sets the fault-injection plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Appends a control event at `at_seconds` (builder style).  Events
    /// must be appended in chronological order.
    pub fn at(mut self, at_seconds: f64, event: ScenarioEvent) -> Self {
        self.scenario.push(TimedEvent { at_seconds, event });
        self
    }

    /// Checks the spec for consistency: cluster and workload parameters,
    /// topology model, dispatcher fan-out, and the scenario schedule
    /// (sorted events, only live servers removed/resized, only dead servers
    /// added, only advertised LBs withdrawn and vice versa, neither the
    /// cluster nor the LB tier ever left empty).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), CoreError> {
        let bad = |msg: String| Err(CoreError::InvalidConfig(msg));
        let c = &self.cluster;
        if c.initial_servers == 0 {
            return bad("at least one initial server is required".into());
        }
        if c.max_servers < c.initial_servers {
            return bad(format!(
                "max_servers {} is below initial_servers {}",
                c.max_servers, c.initial_servers
            ));
        }
        if c.workers == 0 || c.cores == 0 || c.backlog == 0 {
            return bad("workers, cores and backlog must all be at least 1".into());
        }
        if c.vips == 0 {
            return bad("at least one VIP is required".into());
        }
        if c.lb_count == 0 {
            return bad("at least one load balancer is required".into());
        }
        for o in &c.capacity_overrides {
            if o.server as usize >= c.max_servers {
                return bad(format!("capacity override for unknown server {}", o.server));
            }
            if o.workers == 0 || o.cores == 0 {
                return bad("capacity overrides must keep at least 1 worker / 1 core".into());
            }
        }
        c.flow_table.validate()?;
        self.topology.validate().map_err(CoreError::InvalidConfig)?;
        if let PolicyKind::LoadAware { pool, threshold } = self.policy {
            if pool == 0 || threshold == 0 {
                return bad("load-aware pool and threshold must be at least 1".into());
            }
            if pool > MAX_CANDIDATES {
                return bad(format!(
                    "load-aware pool {pool} exceeds the {MAX_CANDIDATES}-candidate SRH budget"
                ));
            }
        }
        let dispatcher = self.policy.dispatcher();
        if dispatcher.fanout() == 0 {
            return bad("dispatcher fan-out must be at least 1".into());
        }
        if dispatcher.fanout() > c.initial_servers {
            return bad(format!(
                "dispatcher fan-out {} exceeds the initial server count {}",
                dispatcher.fanout(),
                c.initial_servers
            ));
        }
        if c.recover_flows && dispatcher.fanout() > MAX_RECOVERY_CANDIDATES {
            return bad(format!(
                "flow recovery supports at most {MAX_RECOVERY_CANDIDATES} candidates per flow \
                 (re-hunt routes also carry the load-balancer marker and the VIP)"
            ));
        }
        self.workload.validate()?;
        if !self.request_delay_ms.is_finite() || self.request_delay_ms < 0.0 {
            return bad("request delay must be finite and non-negative".into());
        }
        self.faults.validate(c)?;

        // The schedule: replay it against the alive server and LB sets.
        let mut alive: Vec<bool> = (0..c.max_servers).map(|i| i < c.initial_servers).collect();
        let mut lb_alive: Vec<bool> = vec![true; c.lb_count];
        let mut last_at = 0.0f64;
        for timed in &self.scenario {
            if !timed.at_seconds.is_finite() || timed.at_seconds < 0.0 {
                return bad(format!("event time {} is invalid", timed.at_seconds));
            }
            if timed.at_seconds < last_at {
                return bad("events must be sorted by time".into());
            }
            last_at = timed.at_seconds;
            match timed.event {
                ScenarioEvent::AddServer { server } => {
                    let i = server as usize;
                    if i >= c.max_servers {
                        return bad(format!("add-server index {server} is out of range"));
                    }
                    if alive[i] {
                        return bad(format!("server {server} is already up"));
                    }
                    alive[i] = true;
                }
                ScenarioEvent::RemoveServer { server } => {
                    let i = server as usize;
                    if i >= c.max_servers || !alive[i] {
                        return bad(format!("server {server} is not up"));
                    }
                    alive[i] = false;
                    if !alive.iter().any(|&a| a) {
                        return bad("the schedule leaves the cluster empty".into());
                    }
                }
                ScenarioEvent::LbFailover => {}
                ScenarioEvent::AddLb { lb } => {
                    let j = lb as usize;
                    if j >= c.lb_count {
                        return bad(format!("add-lb index {lb} is out of range"));
                    }
                    if lb_alive[j] {
                        return bad(format!("load balancer {lb} is already advertised"));
                    }
                    lb_alive[j] = true;
                }
                ScenarioEvent::RemoveLb { lb } => {
                    let j = lb as usize;
                    if j >= c.lb_count || !lb_alive[j] {
                        return bad(format!("load balancer {lb} is not advertised"));
                    }
                    lb_alive[j] = false;
                    if !lb_alive.iter().any(|&a| a) {
                        return bad("the schedule leaves the LB tier empty".into());
                    }
                }
                ScenarioEvent::SetCapacity {
                    server,
                    workers,
                    cores,
                } => {
                    let i = server as usize;
                    if i >= c.max_servers || !alive[i] {
                        return bad(format!("server {server} is not up"));
                    }
                    if workers == 0 || cores == 0 {
                        return bad("capacity must stay at least 1 worker / 1 core".into());
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kind_labels_and_mappings() {
        assert_eq!(PolicyKind::RoundRobin.label(), "RR");
        assert_eq!(PolicyKind::Static { threshold: 4 }.label(), "SR4");
        assert_eq!(PolicyKind::Dynamic.label(), "SRdyn");
        assert_eq!(
            PolicyKind::RoundRobin.dispatcher(),
            DispatcherConfig::Random { k: 1 }
        );
        assert_eq!(
            PolicyKind::Static { threshold: 8 }.dispatcher(),
            DispatcherConfig::Random { k: 2 }
        );
        assert_eq!(
            PolicyKind::Static { threshold: 8 }.acceptance_policy(),
            PolicyConfig::Static { threshold: 8 }
        );
        assert_eq!(
            PolicyKind::Dynamic.acceptance_policy(),
            PolicyConfig::paper_dynamic()
        );
        let explicit = PolicyKind::Explicit {
            dispatcher: DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 },
            acceptance: PolicyConfig::Static { threshold: 4 },
        };
        assert_eq!(
            explicit.dispatcher(),
            DispatcherConfig::ConsistentHash { vnodes: 64, k: 2 }
        );
        assert_eq!(
            explicit.acceptance_policy(),
            PolicyConfig::Static { threshold: 4 }
        );
        assert!(explicit.label().contains("k2"));
    }

    #[test]
    fn paper_specs_validate_and_resolve_lambda0() {
        let spec = ExperimentSpec::poisson_paper(0.89, PolicyKind::Dynamic);
        spec.validate().unwrap();
        // 12 servers × 2 cores / 0.1 s = 240 queries/s.
        let lambda0 = spec.workload.effective_lambda0(&spec.cluster).unwrap();
        assert!((lambda0 - 240.0).abs() < 1e-9);
        let wiki = ExperimentSpec::wikipedia_paper(PolicyKind::Static { threshold: 4 });
        wiki.validate().unwrap();
        assert_eq!(wiki.workload.effective_lambda0(&wiki.cluster), None);
    }

    #[test]
    fn builders_override_fields() {
        let spec = ExperimentSpec::wikipedia_paper(PolicyKind::Dynamic)
            .with_hours(0.5)
            .with_servers(6)
            .with_seed(9)
            .with_name("renamed")
            .with_topology(TopologyModel::rack_zone_default())
            .with_request_delay_ms(50.0)
            .with_load_recording();
        assert_eq!(spec.cluster.initial_servers, 6);
        assert_eq!(spec.cluster.max_servers, 6);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.name, "renamed");
        assert!(spec.cluster.record_load);
        assert_eq!(spec.request_delay_ms, 50.0);
        assert_eq!(spec.topology, TopologyModel::rack_zone_default());
        match spec.workload {
            WorkloadSpec::Wikipedia { hours, .. } => assert_eq!(hours, 0.5),
            _ => panic!("expected wikipedia workload"),
        }
        spec.validate().unwrap();
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = ExperimentSpec::poisson_paper(0.61, PolicyKind::Static { threshold: 4 })
            .with_queries(500)
            .at(1.0, ScenarioEvent::LbFailover);
        let json = serde_json::to_string(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        // Zero servers.
        let mut spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin);
        spec.cluster.initial_servers = 0;
        assert!(spec.validate().is_err());
        // max below initial.
        let mut spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin);
        spec.cluster.max_servers = 4;
        assert!(spec.validate().is_err());
        // Fan-out above server count.
        let spec = ExperimentSpec::poisson_paper(
            0.5,
            PolicyKind::Custom {
                candidates: 50,
                policy: PolicyConfig::Static { threshold: 2 },
            },
        );
        assert!(spec.validate().is_err());
        // Unsorted schedule.
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin)
            .at(5.0, ScenarioEvent::LbFailover)
            .at(1.0, ScenarioEvent::LbFailover);
        assert!(spec.validate().is_err());
        // Removing a server that is not up.
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin)
            .at(1.0, ScenarioEvent::RemoveServer { server: 99 });
        assert!(spec.validate().is_err());
        // Emptying the cluster.
        let mut spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin);
        spec.cluster.initial_servers = 1;
        spec.cluster.max_servers = 1;
        let spec = spec.at(1.0, ScenarioEvent::RemoveServer { server: 0 });
        assert!(spec.validate().is_err());
        // Simultaneous removals of *different* live servers are fine
        // (correlated failures).
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin)
            .at(1.0, ScenarioEvent::RemoveServer { server: 2 })
            .at(1.0, ScenarioEvent::RemoveServer { server: 5 });
        spec.validate().unwrap();
        // Invalid workload.
        let mut spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin);
        spec.workload = WorkloadSpec::Wikipedia {
            hours: 0.0,
            load_fraction: 0.5,
        };
        assert!(spec.validate().is_err());
        // Invalid capacity override.
        let mut spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin);
        spec.cluster.capacity_overrides.push(CapacityOverride {
            server: 99,
            workers: 1,
            cores: 1,
        });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn lb_count_serde_is_byte_stable_and_defaulted() {
        // The degenerate single-LB tier is omitted from the JSON entirely,
        // so committed specs written before the multi-LB refactor parse
        // and re-serialise byte-identically.
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::Dynamic);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(!json.contains("lb_count"), "lb_count = 1 must be skipped");
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cluster.lb_count, 1);
        assert_eq!(back, spec);

        // A multi-LB tier round-trips explicitly.
        let spec = spec.with_lb_count(4);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"lb_count\":4"));
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn load_aware_policy_maps_to_dispatcher_and_acceptance() {
        let policy = PolicyKind::LoadAware {
            pool: 4,
            threshold: 4,
        };
        assert_eq!(policy.label(), "SRla-p4c4");
        assert_eq!(
            policy.dispatcher(),
            DispatcherConfig::LoadAware {
                vnodes: 64,
                pool: 4,
                k: 2,
            }
        );
        assert_eq!(
            policy.acceptance_policy(),
            PolicyConfig::Static { threshold: 4 }
        );
        ExperimentSpec::poisson_paper(0.89, policy)
            .validate()
            .unwrap();
        // Pool 0 and pools beyond the SRH candidate budget are rejected.
        let spec = ExperimentSpec::poisson_paper(
            0.5,
            PolicyKind::LoadAware {
                pool: 0,
                threshold: 4,
            },
        );
        assert!(spec.validate().is_err());
        let spec = ExperimentSpec::poisson_paper(
            0.5,
            PolicyKind::LoadAware {
                pool: MAX_CANDIDATES + 1,
                threshold: 4,
            },
        );
        assert!(spec.validate().is_err());
    }

    #[test]
    fn flow_table_serde_is_byte_stable_and_defaulted() {
        // The unbounded default table is omitted from the JSON entirely, so
        // committed specs written before the flow-state subsystem existed
        // parse and re-serialise byte-identically (the `lb_count`
        // precedent).
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::Dynamic);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(
            !json.contains("flow_table"),
            "the default table must be skipped: {json}"
        );
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cluster.flow_table, FlowTableSpec::default());
        assert_eq!(back, spec);

        // A bounded table round-trips, serialising only non-default fields.
        let spec = spec.with_flow_table(FlowTableSpec {
            idle_timeout_s: 30.0,
            capacity: Some(256),
            shards: DEFAULT_SHARDS,
            sweep_interval_s: Some(5.0),
        });
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"capacity\":256"), "{json}");
        assert!(json.contains("\"idle_timeout_s\":30.0"), "{json}");
        assert!(!json.contains("shards"), "default shards skipped: {json}");
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        spec.validate().unwrap();
    }

    #[test]
    fn flow_table_spec_builds_the_configured_table() {
        let table = FlowTableSpec {
            idle_timeout_s: 30.0,
            capacity: Some(256),
            shards: 4,
            sweep_interval_s: Some(5.0),
        };
        let state = table.build();
        assert_eq!(
            state.idle_timeout(),
            srlb_sim::SimDuration::from_secs_f64(30.0)
        );
        assert_eq!(state.capacity(), Some(256));
        assert_eq!(state.config().shards(), 4);
        assert_eq!(
            table.sweep_interval(),
            Some(srlb_sim::SimDuration::from_secs_f64(5.0))
        );
        let default = FlowTableSpec::default();
        assert_eq!(default.build().capacity(), None);
        assert_eq!(default.sweep_interval(), None);
    }

    #[test]
    fn flow_table_validation_rejects_bad_parameters() {
        let with_table = |flow_table| {
            ExperimentSpec::poisson_paper(0.5, PolicyKind::Dynamic).with_flow_table(flow_table)
        };
        // Non-positive idle timeout.
        assert!(with_table(FlowTableSpec {
            idle_timeout_s: 0.0,
            ..FlowTableSpec::default()
        })
        .validate()
        .is_err());
        // Zero capacity.
        assert!(with_table(FlowTableSpec {
            capacity: Some(0),
            ..FlowTableSpec::default()
        })
        .validate()
        .is_err());
        // Non-power-of-two shard count.
        assert!(with_table(FlowTableSpec {
            shards: 3,
            ..FlowTableSpec::default()
        })
        .validate()
        .is_err());
        // Non-positive sweep interval.
        assert!(with_table(FlowTableSpec {
            sweep_interval_s: Some(0.0),
            ..FlowTableSpec::default()
        })
        .validate()
        .is_err());
    }

    #[test]
    fn fault_plan_serde_is_byte_stable_and_defaulted() {
        // An empty fault plan is omitted from the JSON entirely, so
        // committed specs written before the fault layer existed parse and
        // re-serialise byte-identically (the `lb_count` precedent).
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::Dynamic);
        let json = serde_json::to_string(&spec).unwrap();
        assert!(!json.contains("faults"), "an empty plan must be skipped");
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert!(back.faults.is_empty());
        assert_eq!(back, spec);

        // A lossy plan round-trips explicitly, and empty rule classes stay
        // out of the JSON.
        let spec = spec.with_faults(FaultPlan {
            loss: vec![LossSpec {
                link: FaultLink::default(),
                probability: 0.01,
            }],
            recovery: Some(srlb_net::RetransmitPolicy::default()),
            ..FaultPlan::default()
        });
        let json = serde_json::to_string(&spec).unwrap();
        assert!(json.contains("\"probability\":0.01"), "{json}");
        assert!(!json.contains("\"drops\""), "{json}");
        assert!(!json.contains("\"slow_nodes\""), "{json}");
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert!(back.faults.injects_faults());
        spec.validate().unwrap();
    }

    #[test]
    fn fault_plan_validation_rejects_bad_rules() {
        let base = || ExperimentSpec::poisson_paper(0.5, PolicyKind::Dynamic).with_lb_count(2);
        let with_plan = |faults| base().with_faults(faults);
        // Probability out of range.
        assert!(with_plan(FaultPlan {
            loss: vec![LossSpec {
                link: FaultLink::default(),
                probability: 1.5,
            }],
            ..FaultPlan::default()
        })
        .validate()
        .is_err());
        // One-shot drop with a zero (0-based) packet index.
        assert!(with_plan(FaultPlan {
            drops: vec![OneShotDropSpec {
                from: FaultNode::Client,
                to: FaultNode::Lb { index: 0 },
                packet: 0,
            }],
            ..FaultPlan::default()
        })
        .validate()
        .is_err());
        // Inverted down window.
        assert!(with_plan(FaultPlan {
            down: vec![DownWindowSpec {
                link: FaultLink::default(),
                from_seconds: 5.0,
                until_seconds: 1.0,
            }],
            ..FaultPlan::default()
        })
        .validate()
        .is_err());
        // Zero-capacity queue and non-positive drain rate.
        assert!(with_plan(FaultPlan {
            queues: vec![QueueSpec {
                from: FaultNode::Client,
                to: FaultNode::Lb { index: 0 },
                capacity: 0,
                drain_pps: 100.0,
            }],
            ..FaultPlan::default()
        })
        .validate()
        .is_err());
        assert!(with_plan(FaultPlan {
            queues: vec![QueueSpec {
                from: FaultNode::Client,
                to: FaultNode::Lb { index: 0 },
                capacity: 8,
                drain_pps: 0.0,
            }],
            ..FaultPlan::default()
        })
        .validate()
        .is_err());
        // Non-positive slow-node multiplier.
        assert!(with_plan(FaultPlan {
            slow_nodes: vec![SlowNodeSpec {
                node: FaultNode::Server { index: 0 },
                multiplier: 0.0,
            }],
            ..FaultPlan::default()
        })
        .validate()
        .is_err());
        // Endpoint indices out of range for the cluster shape.
        assert!(with_plan(FaultPlan {
            slow_nodes: vec![SlowNodeSpec {
                node: FaultNode::Lb { index: 7 },
                multiplier: 2.0,
            }],
            ..FaultPlan::default()
        })
        .validate()
        .is_err());
        assert!(with_plan(FaultPlan {
            drops: vec![OneShotDropSpec {
                from: FaultNode::Server { index: 99 },
                to: FaultNode::Client,
                packet: 1,
            }],
            ..FaultPlan::default()
        })
        .validate()
        .is_err());
        // Broken recovery policy.
        assert!(with_plan(FaultPlan {
            recovery: Some(srlb_net::RetransmitPolicy {
                timeout_ms: -1.0,
                ..srlb_net::RetransmitPolicy::default()
            }),
            ..FaultPlan::default()
        })
        .validate()
        .is_err());
        // A well-formed plan over the same shape passes.
        with_plan(FaultPlan {
            loss: vec![LossSpec {
                link: FaultLink {
                    from: Some(FaultNode::Lb { index: 1 }),
                    to: None,
                },
                probability: 0.02,
            }],
            queues: vec![QueueSpec {
                from: FaultNode::Client,
                to: FaultNode::Lb { index: 0 },
                capacity: 64,
                drain_pps: 10_000.0,
            }],
            slow_nodes: vec![SlowNodeSpec {
                node: FaultNode::Server { index: 0 },
                multiplier: 4.0,
            }],
            ..FaultPlan::default()
        })
        .validate()
        .unwrap();
    }

    #[test]
    fn fault_plan_lowers_roles_to_node_ids() {
        use srlb_sim::NodeId;
        let plan = FaultPlan {
            loss: vec![LossSpec {
                link: FaultLink {
                    from: Some(FaultNode::Client),
                    to: Some(FaultNode::Lb { index: 1 }),
                },
                probability: 0.5,
            }],
            drops: vec![OneShotDropSpec {
                from: FaultNode::Lb { index: 0 },
                to: FaultNode::Server { index: 2 },
                packet: 7,
            }],
            queues: vec![QueueSpec {
                from: FaultNode::Server { index: 0 },
                to: FaultNode::Client,
                capacity: 16,
                drain_pps: 1.0e9, // 1 ns service time
            }],
            ..FaultPlan::default()
        };
        let client = NodeId(0);
        let lbs = [NodeId(1), NodeId(2)];
        let servers = [NodeId(3), NodeId(4), NodeId(5)];
        let config = plan.to_fault_config(client, &lbs, &servers);
        assert_eq!(config.loss[0].link.from, Some(NodeId(0)));
        assert_eq!(config.loss[0].link.to, Some(NodeId(2)));
        assert_eq!(config.drops[0].from, NodeId(1));
        assert_eq!(config.drops[0].to, NodeId(5));
        assert_eq!(config.drops[0].packet, 7);
        assert_eq!(config.queues[0].from, NodeId(3));
        assert_eq!(config.queues[0].to, NodeId(0));
        assert_eq!(config.queues[0].service.as_nanos(), 1);
        assert!(config.down.is_empty());
        config.validate().unwrap();
    }

    #[test]
    fn validation_checks_the_lb_tier_schedule() {
        // Zero LBs.
        let mut spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin);
        spec.cluster.lb_count = 0;
        assert!(spec.validate().is_err());
        // Withdraw + re-advertise round trip is valid.
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin)
            .with_lb_count(3)
            .at(1.0, ScenarioEvent::RemoveLb { lb: 2 })
            .at(2.0, ScenarioEvent::AddLb { lb: 2 });
        spec.validate().unwrap();
        // Withdrawing an instance that is not advertised.
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin)
            .with_lb_count(2)
            .at(1.0, ScenarioEvent::RemoveLb { lb: 1 })
            .at(2.0, ScenarioEvent::RemoveLb { lb: 1 });
        assert!(spec.validate().is_err());
        // Advertising an instance that is already advertised.
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin)
            .with_lb_count(2)
            .at(1.0, ScenarioEvent::AddLb { lb: 0 });
        assert!(spec.validate().is_err());
        // Out-of-range index.
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin)
            .with_lb_count(2)
            .at(1.0, ScenarioEvent::RemoveLb { lb: 7 });
        assert!(spec.validate().is_err());
        // Emptying the tier.
        let spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin)
            .at(1.0, ScenarioEvent::RemoveLb { lb: 0 });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn validation_rejects_malformed_traces() {
        use srlb_sim::{SimDuration, SimTime};
        let req = |id: u64, at: f64| {
            srlb_workload::Request::new(
                id,
                SimTime::from_secs_f64(at),
                srlb_metrics::RequestClass::Synthetic,
                SimDuration::from_millis(1),
            )
        };
        let with_trace = |requests| {
            let mut spec = ExperimentSpec::poisson_paper(0.5, PolicyKind::RoundRobin);
            spec.workload = WorkloadSpec::Trace { requests };
            spec
        };
        // Unsorted arrivals.
        assert!(with_trace(vec![req(0, 2.0), req(1, 1.0)])
            .validate()
            .is_err());
        // Gap in the id space (ids map to unregistered client endpoints).
        assert!(with_trace(vec![req(0, 1.0), req(5, 2.0)])
            .validate()
            .is_err());
        // A well-formed, zero-based trace passes (empty traces too).
        with_trace(vec![req(0, 1.0), req(1, 2.0)])
            .validate()
            .unwrap();
        with_trace(Vec::new()).validate().unwrap();
    }

    #[test]
    fn event_labels_are_descriptive() {
        assert_eq!(
            ScenarioEvent::AddServer { server: 3 }.label(),
            "add-server-3"
        );
        assert_eq!(ScenarioEvent::LbFailover.label(), "lb-failover");
        assert_eq!(ScenarioEvent::AddLb { lb: 1 }.label(), "add-lb-1");
        assert_eq!(ScenarioEvent::RemoveLb { lb: 2 }.label(), "remove-lb-2");
        assert!(ScenarioEvent::SetCapacity {
            server: 1,
            workers: 8,
            cores: 4
        }
        .label()
        .contains("8w4c"));
    }
}
