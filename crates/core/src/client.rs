//! The traffic generator / measurement client.
//!
//! The client replays a time-ordered request stream as an *open-loop*
//! source (arrivals do not depend on completions, as with the paper's
//! Poisson generator and trace replayer), performs the TCP exchange for each
//! request, and records per-request response times and outcomes into a
//! [`ResponseTimeCollector`].
//!
//! Requests are **pulled on demand** from a streaming
//! [`Workload`](srlb_workload::Workload): the client holds at most one
//! not-yet-sent request, so a 24-hour replay never needs the whole trace in
//! memory ([`ClientNode::new`] keeps the old eager `Vec<Request>` entry
//! point as a wrapper).
//!
//! Each request gets a unique `(client address, source port)` pair so flows
//! never collide; the mapping is arithmetic (request id → address index and
//! port), so no per-request lookup table is needed.

use std::net::Ipv6Addr;

use rand::RngCore;
use srlb_metrics::{RequestClass, RequestOutcome, RequestRecord, ResponseTimeCollector};
use srlb_net::{AddressPlan, Packet, PacketBuilder, RetransmitPolicy, TcpFlags};
use srlb_server::server_node::encode_request_payload;
use srlb_server::Directory;
use srlb_sim::{Context, Node, NodeId, SimDuration, SimTime, TimerToken};
use srlb_workload::{requests_into_stream, BoxedWorkload, Request};

/// Timer-token bit marking a deferred-request timer (the low bits carry the
/// request id); SYN timers use the plain request id, which never reaches
/// this bit.
const REQUEST_TIMER_BIT: u64 = 1 << 63;

/// Timer-token bit marking a retransmission timeout (the low bits carry the
/// request id).  Only armed when a [`RetransmitPolicy`] is configured, so
/// fault-free runs schedule exactly the same timers as before the fault
/// layer existed.
const RETX_TIMER_BIT: u64 = 1 << 62;

/// Number of source ports used per client address before moving to the next
/// address (keeps ports in the dynamic range 1024–61023).
pub const PORTS_PER_ADDR: u64 = 60_000;
/// First source port used.
pub const BASE_PORT: u16 = 1024;
/// Destination (service) port of the VIP.
pub const VIP_PORT: u16 = 80;

/// Derives the `(client address, source port)` pair for request `id`.
pub fn request_endpoint(plan: &AddressPlan, id: u64) -> (Ipv6Addr, u16) {
    let addr_index = (id / PORTS_PER_ADDR) as u32;
    let port = BASE_PORT + (id % PORTS_PER_ADDR) as u16;
    (plan.client_addr(addr_index), port)
}

/// Inverse of [`request_endpoint`]: recovers the request id from the client
/// address and source port of a packet.  Returns `None` for addresses or
/// ports outside the generator's ranges.
pub fn request_id_of(plan: &AddressPlan, addr: Ipv6Addr, port: u16) -> Option<u64> {
    let addr_index = plan.client_of(addr)? as u64;
    if port < BASE_PORT {
        return None;
    }
    Some(addr_index * PORTS_PER_ADDR + (port - BASE_PORT) as u64)
}

/// Number of distinct client addresses needed for a trace of `n` requests.
pub fn client_addr_count(n: usize) -> u32 {
    (n as u64 / PORTS_PER_ADDR) as u32 + 1
}

/// Which transmission a request is currently waiting on, for deciding what
/// to resend when a retransmission timer fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Awaiting {
    /// SYN sent, waiting for the SYN-ACK.
    SynSent,
    /// Handshake done, think timer armed; nothing is on the wire, so a
    /// retransmission timer firing in this state is stale.
    Thinking,
    /// HTTP request sent, waiting for the response.
    RequestSent,
}

/// Per-request in-flight bookkeeping.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    sent_at: SimTime,
    class: RequestClass,
    /// CPU service demand carried in the HTTP request payload once the
    /// handshake completes (the trace itself is streamed, not retained).
    service: SimDuration,
    /// What the request currently waits on.
    awaiting: Awaiting,
    /// Retransmissions performed so far.
    retries: u32,
    /// Fire time of the armed retransmission timer.  A timer is honored
    /// only if it fires exactly at this instant; re-arming or a state
    /// change moves the deadline and thereby cancels older timers (the
    /// engine has no timer cancellation).  [`SimTime::ZERO`] means "none
    /// armed" — no timer scheduled strictly after time zero can fire at it.
    deadline: SimTime,
}

/// The open-loop client node.
#[derive(Debug)]
pub struct ClientNode {
    plan: AddressPlan,
    /// The VIPs requests are spread over (request id modulo the VIP count),
    /// so several applications can share one cluster.  Always non-empty.
    vips: Vec<Ipv6Addr>,
    /// Client think time between the handshake completing and the HTTP
    /// request being sent.  Zero (the default) sends the request
    /// immediately, as the paper's closed HTTP exchange does; dynamic-cluster
    /// scenarios use a non-zero delay so connections are *established but
    /// quiescent* for a realistic window — the state a load-balancer
    /// failover actually disrupts.
    request_delay: SimDuration,
    directory: Directory,
    /// The request stream, pulled one request at a time.
    source: BoxedWorkload,
    /// The next request to send: pulled from the stream, timer armed.
    pending: Option<Request>,
    /// Outstanding requests by id.  A `BTreeMap` so every traversal —
    /// most importantly the leftover drain in
    /// [`ClientNode::into_collector`], which feeds the committed reports —
    /// is ordered by request id with no per-instance hash randomness to
    /// depend on.
    in_flight: std::collections::BTreeMap<u64, InFlight>,
    collector: ResponseTimeCollector,
    sent: u64,
    completed: u64,
    resets: u64,
    /// End-to-end recovery policy.  `None` (the default) reproduces the
    /// legacy fire-and-forget behavior exactly: no retransmission timers
    /// are armed and no extra randomness is drawn, so fault-free runs stay
    /// byte-identical to pre-fault-layer builds.
    retransmit: Option<RetransmitPolicy>,
    aborted: u64,
    retransmits: u64,
}

impl ClientNode {
    /// Creates a client that will replay `requests` (must be sorted by
    /// arrival time) against `vip`.
    ///
    /// Eager-trace convenience over [`ClientNode::from_workload`].
    ///
    /// # Panics
    ///
    /// Panics if the requests are not sorted by arrival time.
    pub fn new(
        plan: AddressPlan,
        vip: Ipv6Addr,
        directory: Directory,
        requests: Vec<Request>,
    ) -> Self {
        assert!(
            srlb_workload::request::is_well_formed(&requests),
            "requests must be sorted by arrival time with increasing ids"
        );
        Self::from_workload(
            plan,
            vip,
            directory,
            Box::new(requests_into_stream(requests)),
        )
    }

    /// Creates a client that pulls requests on demand from a streaming
    /// workload (which yields them sorted by arrival time with increasing
    /// ids, as the [`srlb_workload::Workload`] contract requires).
    pub fn from_workload(
        plan: AddressPlan,
        vip: Ipv6Addr,
        directory: Directory,
        source: BoxedWorkload,
    ) -> Self {
        ClientNode {
            plan,
            vips: vec![vip],
            request_delay: SimDuration::ZERO,
            directory,
            source,
            pending: None,
            in_flight: std::collections::BTreeMap::new(),
            collector: ResponseTimeCollector::new(),
            sent: 0,
            completed: 0,
            resets: 0,
            retransmit: None,
            aborted: 0,
            retransmits: 0,
        }
    }

    /// Replaces the VIP set; requests are assigned round-robin by id.
    ///
    /// # Panics
    ///
    /// Panics if `vips` is empty.
    pub fn with_vips(mut self, vips: Vec<Ipv6Addr>) -> Self {
        assert!(!vips.is_empty(), "at least one VIP is required");
        self.vips = vips;
        self
    }

    /// The VIP request `id` is (deterministically) sent to.
    pub fn vip_of(&self, id: u64) -> Ipv6Addr {
        self.vips[(id % self.vips.len() as u64) as usize]
    }

    /// Sets the think time between handshake completion and the HTTP
    /// request (default: zero, i.e. immediately).
    pub fn with_request_delay(mut self, delay: SimDuration) -> Self {
        self.request_delay = delay;
        self
    }

    /// Enables end-to-end recovery: each outstanding transmission (SYN or
    /// HTTP request) is guarded by a retransmission timer with exponential
    /// backoff and jitter, and the request is aborted — surfaced as
    /// [`RequestOutcome::Aborted`] rather than hanging forever — once the
    /// policy's retry budget is spent.
    pub fn with_retransmit(mut self, policy: RetransmitPolicy) -> Self {
        self.retransmit = Some(policy);
        self
    }

    /// Number of requests sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Number of completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of reset requests.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Number of requests aborted after exhausting the retransmission
    /// budget.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Total retransmissions performed across all requests.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Number of requests still awaiting a response.
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// Consumes the client and returns its measurement collector, marking
    /// any still-outstanding requests as unfinished.
    pub fn into_collector(mut self) -> ResponseTimeCollector {
        // `in_flight` is a BTreeMap precisely so this drain is in
        // request-id order by construction — leftover records land in the
        // report deterministically with nothing left to sort.
        let leftover = std::mem::take(&mut self.in_flight);
        for (_, info) in leftover {
            self.collector.push(RequestRecord {
                sent_at_seconds: info.sent_at.as_secs_f64(),
                response_time_ms: None,
                class: info.class,
                outcome: RequestOutcome::Unfinished,
                served_by: None,
                retransmits: info.retries,
            });
        }
        self.collector
    }

    /// A read-only view of the collector (outstanding requests excluded).
    pub fn collector(&self) -> &ResponseTimeCollector {
        &self.collector
    }

    /// Sends a VIP-bound packet: the VIP is anycast to the load-balancer
    /// tier, so the packet is ECMP-steered by its flow's 5-tuple hash —
    /// the simulator's model of the routers in front of the LB fleet.
    /// With a single load balancer the steering degenerates to that
    /// instance and runs are identical to the pre-tier client.
    fn send_to_vip(&self, ctx: &mut Context<'_, Packet>, vip: Ipv6Addr, packet: Packet) {
        let hash = packet.flow_key_forward().stable_hash();
        if let Some(node) = self.directory.lookup_flow(vip, hash) {
            ctx.send(node, packet);
        }
    }

    /// Pulls the next request from the stream (if none is already pending)
    /// and arms its arrival timer.
    fn schedule_next(&mut self, ctx: &mut Context<'_, Packet>) {
        if self.pending.is_none() {
            self.pending = self.source.next_request();
        }
        if let Some(request) = &self.pending {
            let delay = request.arrival.duration_since(ctx.now());
            ctx.schedule_timer(delay, TimerToken(request.id));
        }
    }

    /// Builds the SYN of request `id` (identical bytes on every
    /// (re)transmission, so the LB's hunt is keyed by the same flow).
    fn syn_packet(&self, id: u64) -> Packet {
        let (addr, port) = request_endpoint(&self.plan, id);
        PacketBuilder::tcp(addr, self.vip_of(id))
            .ports(port, VIP_PORT)
            .flags(TcpFlags::SYN)
            .build()
    }

    /// Builds the HTTP request (ACK|PSH) of request `id` carrying `service`.
    fn http_packet(&self, id: u64, service: SimDuration) -> Packet {
        let (addr, port) = request_endpoint(&self.plan, id);
        PacketBuilder::tcp(addr, self.vip_of(id))
            .ports(port, VIP_PORT)
            .flags(TcpFlags::ACK | TcpFlags::PSH)
            .payload(encode_request_payload(id, service))
            .build()
    }

    /// Arms the retransmission timer for request `id`'s current
    /// transmission: `timeout_ms × backoff^retries` plus a uniform jitter
    /// from the client's own forked random stream.  No-op without a policy,
    /// so fault-free runs neither schedule timers nor draw randomness here.
    fn arm_retransmit(&mut self, id: u64, ctx: &mut Context<'_, Packet>) {
        let Some(policy) = self.retransmit else {
            return;
        };
        let Some(info) = self.in_flight.get_mut(&id) else {
            return;
        };
        let mut timeout = policy.timeout_nanos(info.retries);
        let max_jitter = policy.max_jitter_nanos(info.retries);
        if max_jitter > 0 {
            timeout += ctx.rng().next_u64() % (max_jitter + 1);
        }
        let delay = SimDuration::from_nanos(timeout);
        info.deadline = ctx.now() + delay;
        ctx.schedule_timer(delay, TimerToken(id | RETX_TIMER_BIT));
    }

    fn send_request_syn(&mut self, request: Request, ctx: &mut Context<'_, Packet>) {
        let vip = self.vip_of(request.id);
        let syn = self.syn_packet(request.id);
        self.in_flight.insert(
            request.id,
            InFlight {
                sent_at: ctx.now(),
                class: request.class,
                service: request.service,
                awaiting: Awaiting::SynSent,
                retries: 0,
                deadline: SimTime::ZERO,
            },
        );
        self.sent += 1;
        self.send_to_vip(ctx, vip, syn);
        self.arm_retransmit(request.id, ctx);
    }

    fn handle_syn_ack(&mut self, packet: &Packet, ctx: &mut Context<'_, Packet>) {
        // The SYN-ACK is addressed to the per-request client endpoint; recover
        // the request id and send the HTTP request itself — immediately, or
        // after the configured think time.
        let Some(id) = request_id_of(
            &self.plan,
            packet.current_destination(),
            packet.tcp.destination_port,
        ) else {
            return;
        };
        // A duplicate SYN-ACK (a retransmitted SYN accepted by a second
        // server, or the original acceptance racing a retransmission) must
        // not re-send the request or arm a second think timer.
        match self.in_flight.get_mut(&id) {
            Some(info) if info.awaiting == Awaiting::SynSent => {
                if !self.request_delay.is_zero() {
                    info.awaiting = Awaiting::Thinking;
                    info.deadline = SimTime::ZERO;
                }
            }
            _ => return,
        }
        if self.request_delay.is_zero() {
            self.send_http_request(id, ctx);
        } else {
            ctx.schedule_timer(self.request_delay, TimerToken(id | REQUEST_TIMER_BIT));
        }
    }

    fn send_http_request(&mut self, id: u64, ctx: &mut Context<'_, Packet>) {
        // The service demand travels with the in-flight record; a flow that
        // already finished (or was never sent) has nothing to request.
        let Some(info) = self.in_flight.get_mut(&id) else {
            return;
        };
        info.awaiting = Awaiting::RequestSent;
        let service = info.service;
        let vip = self.vip_of(id);
        let http_request = self.http_packet(id, service);
        self.send_to_vip(ctx, vip, http_request);
        self.arm_retransmit(id, ctx);
    }

    /// A retransmission timer fired for request `id`.  Honored only when it
    /// matches the armed deadline exactly (older timers keep firing because
    /// the engine has no cancellation; the moved deadline invalidates
    /// them) and the request is actually waiting on the wire.
    fn on_retransmit_timeout(&mut self, id: u64, ctx: &mut Context<'_, Packet>) {
        let Some(policy) = self.retransmit else {
            return;
        };
        let Some(info) = self.in_flight.get_mut(&id) else {
            return; // already finished
        };
        if info.awaiting == Awaiting::Thinking || info.deadline != ctx.now() {
            return; // stale timer
        }
        if info.retries >= policy.max_retries {
            // Budget spent: give up gracefully instead of hanging.  The
            // request was transmitted `1 + max_retries` times in total.
            self.finish(id, RequestOutcome::Aborted, None, ctx);
            return;
        }
        info.retries += 1;
        self.retransmits += 1;
        let awaiting = info.awaiting;
        let service = info.service;
        let vip = self.vip_of(id);
        let packet = match awaiting {
            // The LB treats every SYN as new and re-hunts, so the retry may
            // land on a different (healthier) server.
            Awaiting::SynSent => self.syn_packet(id),
            // An established flow: the LB's flow table steers the copy to
            // the server that accepted the connection.
            Awaiting::RequestSent => self.http_packet(id, service),
            Awaiting::Thinking => unreachable!("checked above"),
        };
        self.send_to_vip(ctx, vip, packet);
        self.arm_retransmit(id, ctx);
    }

    fn finish(
        &mut self,
        id: u64,
        outcome: RequestOutcome,
        served_by: Option<u32>,
        ctx: &Context<'_, Packet>,
    ) {
        let Some(info) = self.in_flight.remove(&id) else {
            return;
        };
        let response_time_ms = match outcome {
            RequestOutcome::Completed => {
                Some(ctx.now().duration_since(info.sent_at).as_millis_f64())
            }
            _ => None,
        };
        match outcome {
            RequestOutcome::Completed => self.completed += 1,
            RequestOutcome::Reset => self.resets += 1,
            RequestOutcome::Aborted => self.aborted += 1,
            RequestOutcome::Unfinished => {}
        }
        self.collector.push(RequestRecord {
            sent_at_seconds: info.sent_at.as_secs_f64(),
            response_time_ms,
            class: info.class,
            outcome,
            served_by,
            retransmits: info.retries,
        });
    }
}

impl Node<Packet> for ClientNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        self.schedule_next(ctx);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Packet>) {
        if token.0 & REQUEST_TIMER_BIT != 0 {
            // Think time elapsed: send the HTTP request of an established
            // connection.
            self.send_http_request(token.0 & !REQUEST_TIMER_BIT, ctx);
            return;
        }
        if token.0 & RETX_TIMER_BIT != 0 {
            // Must be checked before the pending-request branch below: a
            // retransmission timer is not the arrival timer of `pending`.
            self.on_retransmit_timeout(token.0 & !RETX_TIMER_BIT, ctx);
            return;
        }
        // The timer for request `token.0` fired: send it, then pull and arm
        // the next request in the stream.
        let request = self
            .pending
            .take()
            // srlb-lint: allow(panic-hygiene) -- timer tokens without RETX_TIMER_BIT are armed only in schedule_next, which always sets `pending` first
            .expect("a request timer only fires for the pending request");
        debug_assert_eq!(request.id, token.0);
        self.send_request_syn(request, ctx);
        self.schedule_next(ctx);
    }

    fn on_message(&mut self, packet: Packet, _from: NodeId, ctx: &mut Context<'_, Packet>) {
        let Some(id) = request_id_of(
            &self.plan,
            packet.current_destination(),
            packet.tcp.destination_port,
        ) else {
            return;
        };
        if packet.is_syn_ack() {
            self.handle_syn_ack(&packet, ctx);
        } else if packet.is_rst() {
            self.finish(id, RequestOutcome::Reset, None, ctx);
        } else if packet.tcp.flags.contains(TcpFlags::PSH) {
            // The response payload names the serving server, so completions
            // are attributable (per-phase fairness in scenario runs).
            let served_by =
                srlb_server::server_node::decode_response_payload(&packet.payload).map(|(_, s)| s);
            self.finish(id, RequestOutcome::Completed, served_by, ctx);
        }
    }

    fn name(&self) -> String {
        "client".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlb_metrics::RequestClass;
    use srlb_sim::SimDuration;
    use srlb_workload::Request;

    #[test]
    fn endpoint_mapping_is_invertible() {
        let plan = AddressPlan::default();
        for id in [0u64, 1, 59_999, 60_000, 60_001, 180_000, 1_000_000] {
            let (addr, port) = request_endpoint(&plan, id);
            assert_eq!(request_id_of(&plan, addr, port), Some(id));
            assert!(port >= BASE_PORT);
        }
    }

    #[test]
    fn endpoint_mapping_rejects_foreign_addresses() {
        let plan = AddressPlan::default();
        assert_eq!(request_id_of(&plan, plan.lb_addr(), 2000), None);
        let (addr, _) = request_endpoint(&plan, 0);
        assert_eq!(request_id_of(&plan, addr, 100), None);
    }

    #[test]
    fn client_addr_count_covers_the_trace() {
        assert_eq!(client_addr_count(0), 1);
        assert_eq!(client_addr_count(59_999), 1);
        assert_eq!(client_addr_count(60_000), 2);
        assert_eq!(client_addr_count(1_000_000), 17);
    }

    #[test]
    fn unsorted_trace_is_rejected() {
        let plan = AddressPlan::default();
        let requests = vec![
            Request::new(
                0,
                SimTime::from_secs_f64(2.0),
                RequestClass::Synthetic,
                SimDuration::from_millis(1),
            ),
            Request::new(
                1,
                SimTime::from_secs_f64(1.0),
                RequestClass::Synthetic,
                SimDuration::from_millis(1),
            ),
        ];
        let result = std::panic::catch_unwind(|| {
            ClientNode::new(plan.clone(), plan.vip(0), Directory::new(), requests)
        });
        assert!(result.is_err());
    }

    #[test]
    fn into_collector_drains_leftovers_in_request_id_order() {
        // Regression for the PR 6 nondeterminism bug: `in_flight` used to
        // be a HashMap whose drain order was randomized per instance, so
        // leftover records could land in the report in any order.  The
        // field is a BTreeMap now; an adversarial insertion order must not
        // be observable in the drained records.
        let plan = AddressPlan::default();
        let mut client = ClientNode::new(plan.clone(), plan.vip(0), Directory::new(), vec![]);
        for id in [7u64, 2, 9, 0, 5, 3] {
            client.in_flight.insert(
                id,
                InFlight {
                    // Encode the id into the record so the drain order is
                    // observable from the outside.
                    sent_at: SimTime::from_secs_f64(id as f64),
                    class: RequestClass::Synthetic,
                    service: SimDuration::from_millis(1),
                    awaiting: Awaiting::SynSent,
                    retries: 0,
                    deadline: SimTime::ZERO,
                },
            );
        }
        let collector = client.into_collector();
        let drained: Vec<f64> = collector
            .records()
            .iter()
            .map(|r| r.sent_at_seconds)
            .collect();
        assert_eq!(drained, vec![0.0, 2.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn into_collector_marks_outstanding_as_unfinished() {
        let plan = AddressPlan::default();
        let mut client = ClientNode::new(plan.clone(), plan.vip(0), Directory::new(), vec![]);
        client.in_flight.insert(
            3,
            InFlight {
                sent_at: SimTime::ZERO,
                class: RequestClass::Synthetic,
                service: SimDuration::from_millis(1),
                awaiting: Awaiting::SynSent,
                retries: 0,
                deadline: SimTime::ZERO,
            },
        );
        let collector = client.into_collector();
        assert_eq!(collector.len(), 1);
        assert_eq!(collector.records()[0].outcome, RequestOutcome::Unfinished);
    }
}
