//! Sharded, memory-bounded flow-state store.
//!
//! This module replaces the original single-map flow table with a subsystem
//! designed for the "millions of concurrent flows" regime the paper targets:
//!
//! * **Sharding** — entries are spread over a power-of-two number of shards
//!   selected from the upper bits of [`FlowKey`]'s cached 64-bit hash (the
//!   map bucket index consumes the low bits), so each shard's recency list
//!   and expiry cursor stay short and independent.
//! * **Bounded capacity** — an optional hard bound on the number of entries.
//!   When full, learning a new flow evicts the globally least-recently
//!   touched entry.  Every eviction is classified ([`EvictionCause`]) and
//!   counted: an established, recently-active flow is *never* dropped
//!   silently.
//! * **Incremental expiry** — each shard keeps its entries in an intrusive
//!   least-recently-touched list, so [`FlowState::expire_idle`] pops only the
//!   expired prefix of each shard: cost is O(entries actually expired), not
//!   O(table size) as the old full-scan `retain` was.
//! * **Alloc-free steady state** — slots are recycled through an intrusive
//!   free list, so the warm learn/lookup/evict path performs no heap
//!   allocation (pinned by the counting-allocator test suite).
//!
//! Expiry exactness: the recency list orders entries by *touch* sequence.
//! Under monotonic timestamps — which the simulator guarantees per node —
//! touch order equals `last_active` order and prefix-popping is exact.  If a
//! caller supplies out-of-order timestamps, an entry may expire *late* (a
//! stale head shields newer-stamped entries behind it) but never early: the
//! head is only popped when it has itself exceeded the idle timeout.
//!
//! The legacy [`FlowTable`](crate::FlowTable) name is an alias for
//! [`FlowState`] with the default (unbounded, 8-shard) configuration, so all
//! existing call sites keep working unchanged.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use srlb_metrics::{EvictionBreakdown, EvictionCause, OccupancyGauge};
use srlb_net::FlowKey;
use srlb_sim::{SimDuration, SimTime};

use crate::flow_table::PassthroughHashBuilder;

/// Sentinel index terminating the intrusive lists.
const NIL: u32 = u32::MAX;

/// Default shard count; a small power of two keeps per-shard lists short
/// without bloating tiny tables.
pub const DEFAULT_SHARDS: usize = 8;

/// Default idle timeout in seconds (a typical TCP session timeout for
/// data-centre load balancers).
pub const DEFAULT_IDLE_TIMEOUT_SECS: u64 = 300;

/// Configuration for a [`FlowState`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStateConfig {
    idle_timeout: SimDuration,
    capacity: Option<usize>,
    shards: usize,
}

impl FlowStateConfig {
    /// The default configuration: five-minute idle timeout, unbounded,
    /// [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        FlowStateConfig {
            idle_timeout: SimDuration::from_secs(DEFAULT_IDLE_TIMEOUT_SECS),
            capacity: None,
            shards: DEFAULT_SHARDS,
        }
    }

    /// Sets the idle timeout after which untouched entries expire.
    pub fn with_idle_timeout(mut self, idle_timeout: SimDuration) -> Self {
        self.idle_timeout = idle_timeout;
        self
    }

    /// Bounds the table to at most `capacity` entries (must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "flow-state capacity must be at least 1");
        self.capacity = Some(capacity);
        self
    }

    /// Sets the shard count (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(
            shards.is_power_of_two(),
            "flow-state shard count must be a power of two, got {shards}"
        );
        self.shards = shards;
        self
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> SimDuration {
        self.idle_timeout
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }
}

impl Default for FlowStateConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Lifetime counters of a [`FlowState`] table.
///
/// All counters accumulate across [`FlowState::wipe`] (a fail-over wipe loses
/// the entries, not the history).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStateStats {
    /// Total [`FlowState::learn`] calls (including refreshes of known flows).
    pub inserted: u64,
    /// Entries removed by [`FlowState::expire_idle`].
    pub expired: u64,
    /// Entries evicted under capacity pressure, by cause.
    pub evictions: EvictionBreakdown,
    /// Highest simultaneous occupancy ever reached, reported only for
    /// bounded tables (`0` for unbounded ones, so default configurations
    /// surface no new serialized fields).
    pub peak_occupancy: u64,
}

/// One stored flow entry plus its intrusive-list links.
///
/// `prev`/`next` thread the shard's recency list while occupied and the free
/// list (via `next`) while vacant, so slot recycling never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    key: FlowKey,
    server: Ipv6Addr,
    last_active: SimTime,
    /// Global touch sequence number; higher = touched more recently.
    seq: u64,
    prev: u32,
    next: u32,
}

/// One shard: an index map plus an intrusive recency list over `slots`.
#[derive(Debug, Clone, Default)]
struct Shard {
    map: HashMap<FlowKey, u32, PassthroughHashBuilder>,
    slots: Vec<Slot>,
    /// Head of the vacant-slot free list (linked through `Slot::next`).
    free_head: u32,
    /// Least-recently-touched occupied slot.
    head: u32,
    /// Most-recently-touched occupied slot.
    tail: u32,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::with_hasher(PassthroughHashBuilder),
            slots: Vec::new(),
            free_head: NIL,
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    fn push_tail(&mut self, idx: u32) {
        let old_tail = self.tail;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = old_tail;
            s.next = NIL;
        }
        if old_tail == NIL {
            self.head = idx;
        } else {
            self.slots[old_tail as usize].next = idx;
        }
        self.tail = idx;
    }

    fn move_to_tail(&mut self, idx: u32) {
        if self.tail == idx {
            return;
        }
        self.unlink(idx);
        self.push_tail(idx);
    }

    fn alloc(&mut self, slot: Slot) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.slots[idx as usize].next;
            self.slots[idx as usize] = slot;
            idx
        } else {
            assert!(self.slots.len() < NIL as usize, "shard slot index overflow");
            let idx = self.slots.len() as u32;
            self.slots.push(slot);
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        self.slots[idx as usize].next = self.free_head;
        self.free_head = idx;
    }

    /// Removes the occupied slot `idx` from map, recency list and storage.
    fn discard(&mut self, idx: u32) {
        let key = self.slots[idx as usize].key;
        self.map.remove(&key);
        self.unlink(idx);
        self.release(idx);
    }
}

/// The sharded, optionally bounded flow → server stickiness table.
#[derive(Debug, Clone)]
pub struct FlowState {
    config: FlowStateConfig,
    shards: Vec<Shard>,
    shard_mask: usize,
    len: usize,
    /// Global monotonic touch counter, stamped on every learn/lookup.
    seq: u64,
    occupancy: OccupancyGauge,
    inserted: u64,
    expired: u64,
    evictions: EvictionBreakdown,
}

impl FlowState {
    /// Creates a table with the given configuration.
    pub fn with_config(config: FlowStateConfig) -> Self {
        FlowState {
            config,
            shards: (0..config.shards).map(|_| Shard::new()).collect(),
            shard_mask: config.shards - 1,
            len: 0,
            seq: 0,
            occupancy: OccupancyGauge::new(),
            inserted: 0,
            expired: 0,
            evictions: EvictionBreakdown::default(),
        }
    }

    /// Creates an unbounded table whose entries expire after `idle_timeout`
    /// without traffic.
    pub fn new(idle_timeout: SimDuration) -> Self {
        Self::with_config(FlowStateConfig::new().with_idle_timeout(idle_timeout))
    }

    /// A table with the default five-minute idle timeout.
    pub fn with_default_timeout() -> Self {
        Self::with_config(FlowStateConfig::new())
    }

    /// The table's configuration.
    pub fn config(&self) -> FlowStateConfig {
        self.config
    }

    /// The configured idle timeout.
    pub fn idle_timeout(&self) -> SimDuration {
        self.config.idle_timeout
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.config.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of insertions performed.
    pub fn inserted_total(&self) -> u64 {
        self.inserted
    }

    /// Total number of entries removed by [`FlowState::expire_idle`].
    pub fn expired_total(&self) -> u64 {
        self.expired
    }

    /// Lifetime counters (insertions, expiries, per-cause evictions, peak).
    pub fn stats(&self) -> FlowStateStats {
        FlowStateStats {
            inserted: self.inserted,
            expired: self.expired,
            evictions: self.evictions,
            peak_occupancy: if self.config.capacity.is_some() {
                self.occupancy.peak()
            } else {
                0
            },
        }
    }

    #[inline]
    fn shard_of(&self, flow: &FlowKey) -> usize {
        // The map's bucket index consumes the low hash bits; bits 32+ are
        // uniformly mixed by the SplitMix64 finaliser and independent enough
        // to pick the shard.
        ((flow.stable_hash() >> 32) as usize) & self.shard_mask
    }

    /// Records (or refreshes) the owner of `flow`.
    ///
    /// At capacity, learning a *new* flow first evicts the least-recently
    /// touched entry across all shards (see [`EvictionCause`] for how the
    /// victim's state is classified and counted).
    pub fn learn(&mut self, flow: FlowKey, server: Ipv6Addr, now: SimTime) {
        self.inserted += 1;
        self.seq += 1;
        let seq = self.seq;
        let si = self.shard_of(&flow);
        if let Some(&idx) = self.shards[si].map.get(&flow) {
            let shard = &mut self.shards[si];
            let slot = &mut shard.slots[idx as usize];
            slot.server = server;
            slot.last_active = now;
            slot.seq = seq;
            shard.move_to_tail(idx);
            return;
        }
        if let Some(cap) = self.config.capacity {
            if self.len >= cap {
                self.evict_lru(now);
            }
        }
        let shard = &mut self.shards[si];
        let idx = shard.alloc(Slot {
            key: flow,
            server,
            last_active: now,
            seq,
            prev: NIL,
            next: NIL,
        });
        shard.map.insert(flow, idx);
        shard.push_tail(idx);
        self.len += 1;
        self.occupancy.add(1);
    }

    /// Evicts the globally least-recently-touched entry.
    ///
    /// Each shard's recency list is ordered by touch sequence, so the global
    /// minimum is always one of the shard heads — victim selection is a scan
    /// over `shards` heads, independent of table size.
    fn evict_lru(&mut self, now: SimTime) {
        let mut victim: Option<(usize, u32, u64)> = None;
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.head == NIL {
                continue;
            }
            let seq = shard.slots[shard.head as usize].seq;
            if victim.is_none_or(|(_, _, best)| seq < best) {
                victim = Some((si, shard.head, seq));
            }
        }
        let Some((si, idx, _)) = victim else {
            return;
        };
        let idle = now.duration_since(self.shards[si].slots[idx as usize].last_active);
        let timeout = self.config.idle_timeout;
        let cause = if idle > timeout {
            EvictionCause::Expired
        } else if idle * 2 >= timeout {
            EvictionCause::Idle
        } else {
            EvictionCause::Active
        };
        self.evictions.record(cause);
        self.shards[si].discard(idx);
        self.len -= 1;
        self.occupancy.remove(1);
    }

    /// Looks up the owner of `flow`, refreshing its activity timestamp.
    pub fn lookup(&mut self, flow: &FlowKey, now: SimTime) -> Option<Ipv6Addr> {
        let si = self.shard_of(flow);
        let shard = &mut self.shards[si];
        let &idx = shard.map.get(flow)?;
        self.seq += 1;
        let slot = &mut shard.slots[idx as usize];
        slot.last_active = now;
        slot.seq = self.seq;
        let server = slot.server;
        shard.move_to_tail(idx);
        Some(server)
    }

    /// Looks up the owner of `flow` without refreshing it.
    pub fn peek(&self, flow: &FlowKey) -> Option<Ipv6Addr> {
        let shard = &self.shards[self.shard_of(flow)];
        let idx = *shard.map.get(flow)?;
        Some(shard.slots[idx as usize].server)
    }

    /// Removes the entry for `flow` (connection closed), returning the owner.
    pub fn remove(&mut self, flow: &FlowKey) -> Option<Ipv6Addr> {
        let si = self.shard_of(flow);
        let shard = &mut self.shards[si];
        let &idx = shard.map.get(flow)?;
        let server = shard.slots[idx as usize].server;
        shard.discard(idx);
        self.len -= 1;
        self.occupancy.remove(1);
        Some(server)
    }

    /// Drops every entry idle for longer than the configured timeout;
    /// returns how many were removed.
    ///
    /// Cost is O(removed + shards): each shard pops the expired prefix of
    /// its recency list and stops at the first survivor.
    pub fn expire_idle(&mut self, now: SimTime) -> usize {
        let timeout = self.config.idle_timeout;
        let mut removed = 0usize;
        for shard in &mut self.shards {
            while shard.head != NIL {
                let idx = shard.head;
                if now.duration_since(shard.slots[idx as usize].last_active) <= timeout {
                    break;
                }
                shard.discard(idx);
                removed += 1;
            }
        }
        self.len -= removed;
        self.occupancy.remove(removed as u64);
        self.expired += removed as u64;
        removed
    }

    /// Drops all entries (a fail-over wipe) while keeping the configuration
    /// and accumulated statistics; returns how many entries were lost.
    pub fn wipe(&mut self) -> usize {
        let lost = self.len;
        for shard in &mut self.shards {
            shard.map.clear();
            shard.slots.clear();
            shard.free_head = NIL;
            shard.head = NIL;
            shard.tail = NIL;
        }
        self.len = 0;
        self.occupancy.clear();
        lost
    }

    /// Analytic resident-memory estimate in bytes: slot storage plus an
    /// approximation of the index maps' bucket arrays.  Deterministic for a
    /// given operation sequence (container growth is deterministic), which is
    /// what the macro-bench's committed numbers rely on.
    pub fn resident_bytes(&self) -> u64 {
        let mut total = std::mem::size_of::<Self>() as u64;
        // Per bucket, the map stores the key/value pair plus one control byte.
        let bucket = std::mem::size_of::<(FlowKey, u32)>() + 1;
        for shard in &self.shards {
            total += (shard.slots.capacity() * std::mem::size_of::<Slot>()) as u64;
            total += (shard.map.capacity() * bucket) as u64;
        }
        total
    }
}

impl Default for FlowState {
    fn default() -> Self {
        Self::with_default_timeout()
    }
}

impl PartialEq for FlowState {
    /// Structural equality: same configuration, same lifetime counters and
    /// the same `flow → (server, last_active)` entries — independent of shard
    /// layout, slot placement or touch history.
    fn eq(&self, other: &Self) -> bool {
        if self.config != other.config
            || self.len != other.len
            || self.inserted != other.inserted
            || self.expired != other.expired
            || self.evictions != other.evictions
        {
            return false;
        }
        self.shards.iter().all(|shard| {
            // srlb-lint: allow(unordered-iter) -- `.all()` over every entry is order-independent; no order-sensitive value escapes
            shard.map.iter().all(|(key, &idx)| {
                let slot = &shard.slots[idx as usize];
                let other_shard = &other.shards[other.shard_of(key)];
                other_shard.map.get(key).is_some_and(|&oidx| {
                    let oslot = &other_shard.slots[oidx as usize];
                    oslot.server == slot.server && oslot.last_active == slot.last_active
                })
            })
        })
    }
}

impl Eq for FlowState {}

#[cfg(test)]
mod tests {
    use super::*;
    use srlb_net::Protocol;

    fn flow(port: u16) -> FlowKey {
        FlowKey::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8:1::".parse().unwrap(),
            port,
            80,
            Protocol::Tcp,
        )
    }

    fn server(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfd00, 0, 0, 1, 0, 0, 0, n)
    }

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn bounded(capacity: usize, timeout_s: u64) -> FlowState {
        FlowState::with_config(
            FlowStateConfig::new()
                .with_idle_timeout(SimDuration::from_secs(timeout_s))
                .with_capacity(capacity),
        )
    }

    #[test]
    fn capacity_bound_is_enforced_with_lru_eviction() {
        let mut table = bounded(3, 100);
        for p in 1..=3 {
            table.learn(flow(p), server(p), at(p as u64));
        }
        assert_eq!(table.len(), 3);

        // Touch flow 1 so flow 2 becomes the least-recently-touched.
        assert_eq!(table.lookup(&flow(1), at(10)), Some(server(1)));

        table.learn(flow(4), server(4), at(11));
        assert_eq!(table.len(), 3);
        assert_eq!(table.peek(&flow(2)), None, "LRU entry should be evicted");
        assert_eq!(table.peek(&flow(1)), Some(server(1)));
        assert_eq!(table.peek(&flow(3)), Some(server(3)));
        assert_eq!(table.peek(&flow(4)), Some(server(4)));
        assert_eq!(table.stats().evictions.total(), 1);
    }

    #[test]
    fn refreshing_a_known_flow_never_evicts() {
        let mut table = bounded(2, 100);
        table.learn(flow(1), server(1), at(0));
        table.learn(flow(2), server(2), at(1));
        table.learn(flow(1), server(9), at(2));
        assert_eq!(table.len(), 2);
        assert_eq!(table.stats().evictions.total(), 0);
        assert_eq!(table.peek(&flow(1)), Some(server(9)));
    }

    #[test]
    fn eviction_causes_are_classified_by_idleness() {
        // Timeout 100s: expired > 100s idle, idle ≥ 50s, active < 50s.
        let mut table = bounded(1, 100);
        table.learn(flow(1), server(1), at(0));
        table.learn(flow(2), server(2), at(150)); // victim idle 150s > 100s
        table.learn(flow(3), server(3), at(200)); // victim idle 50s, half of timeout
        table.learn(flow(4), server(4), at(210)); // victim idle 10s < 50s
        let stats = table.stats();
        assert_eq!(stats.evictions.expired, 1);
        assert_eq!(stats.evictions.idle, 1);
        assert_eq!(stats.evictions.active, 1);
        assert_eq!(stats.peak_occupancy, 1);
    }

    #[test]
    fn eviction_victim_is_globally_least_recently_touched() {
        // Many flows spread over shards; the victim must always be the entry
        // with the globally smallest touch sequence, regardless of shard.
        let mut table = bounded(16, 1000);
        for p in 0..16 {
            table.learn(flow(p), server(p), at(p as u64));
        }
        // Touch everything except flow 5, in some scattered order.
        for (i, p) in [0u16, 1, 2, 3, 4, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]
            .iter()
            .enumerate()
        {
            assert!(table.lookup(&flow(*p), at(100 + i as u64)).is_some());
        }
        table.learn(flow(99), server(99), at(200));
        assert_eq!(table.peek(&flow(5)), None, "stalest entry must be evicted");
        assert_eq!(table.len(), 16);
    }

    #[test]
    fn incremental_expiry_matches_full_scan_semantics() {
        let mut table = FlowState::new(SimDuration::from_secs(10));
        table.learn(flow(1), server(1), at(0));
        table.learn(flow(2), server(2), at(0));
        assert_eq!(table.lookup(&flow(2), at(8)), Some(server(2)));

        assert_eq!(table.expire_idle(at(15)), 1);
        assert_eq!(table.peek(&flow(1)), None);
        assert_eq!(table.peek(&flow(2)), Some(server(2)));
        assert_eq!(table.expired_total(), 1);

        // Survival at exactly the timeout, as with the old `retain`.
        assert_eq!(table.expire_idle(at(18)), 0);
        assert_eq!(table.len(), 1);
        assert_eq!(table.expire_idle(at(19)), 1);
        assert!(table.is_empty());
    }

    #[test]
    fn wipe_keeps_config_and_stats() {
        let mut table = bounded(2, 100);
        table.learn(flow(1), server(1), at(0));
        table.learn(flow(2), server(2), at(1));
        table.learn(flow(3), server(3), at(2));
        let before = table.stats();
        assert_eq!(before.evictions.total(), 1);

        assert_eq!(table.wipe(), 2);
        assert!(table.is_empty());
        assert_eq!(table.capacity(), Some(2));
        let after = table.stats();
        assert_eq!(after.inserted, before.inserted);
        assert_eq!(after.evictions, before.evictions);
        assert_eq!(after.peak_occupancy, 2);

        // The table is fully usable after a wipe.
        table.learn(flow(9), server(9), at(3));
        assert_eq!(table.peek(&flow(9)), Some(server(9)));
    }

    #[test]
    fn slots_are_recycled_through_the_free_list() {
        // A single shard makes the recycling bound exact: storage never
        // exceeds the shard's peak occupancy, i.e. the capacity.
        let mut table = FlowState::with_config(
            FlowStateConfig::new()
                .with_idle_timeout(SimDuration::from_secs(100))
                .with_capacity(2)
                .with_shards(1),
        );
        for p in 0..20u16 {
            table.learn(flow(p), server(p), at(p as u64));
        }
        assert_eq!(table.len(), 2);
        assert_eq!(table.stats().evictions.total(), 18);
        assert_eq!(
            table.shards[0].slots.len(),
            2,
            "churn through distinct keys must recycle slots, not allocate"
        );
    }

    #[test]
    fn peak_occupancy_is_zero_for_unbounded_tables() {
        let mut table = FlowState::with_default_timeout();
        for p in 0..10 {
            table.learn(flow(p), server(p), at(0));
        }
        assert_eq!(table.stats().peak_occupancy, 0);
        assert_eq!(table.stats().evictions.total(), 0);
    }

    #[test]
    fn resident_bytes_grows_with_occupancy_and_is_deterministic() {
        let build = || {
            let mut t = FlowState::with_default_timeout();
            for p in 0..1000 {
                t.learn(flow(p), server(p), at(0));
            }
            t
        };
        let empty = FlowState::with_default_timeout();
        let full = build();
        assert!(full.resident_bytes() > empty.resident_bytes());
        assert_eq!(full.resident_bytes(), build().resident_bytes());
    }

    #[test]
    fn structural_equality_ignores_touch_history() {
        let mut a = FlowState::new(SimDuration::from_secs(60));
        let mut b = FlowState::new(SimDuration::from_secs(60));
        a.learn(flow(1), server(1), at(0));
        a.learn(flow(2), server(2), at(1));
        // Same entries learned in the opposite order.
        b.learn(flow(2), server(2), at(1));
        b.learn(flow(1), server(1), at(0));
        assert_eq!(a, b);

        assert!(a.lookup(&flow(1), at(5)).is_some());
        assert_ne!(a, b, "a refreshed timestamp is a structural difference");
        assert!(b.lookup(&flow(1), at(5)).is_some());
        assert_eq!(a, b);
    }

    #[test]
    fn shard_counts_are_validated() {
        FlowStateConfig::new().with_shards(1);
        FlowStateConfig::new().with_shards(64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_panics() {
        FlowStateConfig::new().with_shards(6);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        FlowStateConfig::new().with_capacity(0);
    }
}
