//! # srlb-core — the SRLB load balancer and experiment driver
//!
//! This crate implements the paper's primary contribution on top of the
//! workspace's substrates:
//!
//! * [`dispatch`] — candidate-server selection policies for Service Hunting:
//!   uniform random k-choices (the paper uses two random candidates, after
//!   Mitzenmacher's power-of-two-choices result), plus consistent-hashing and
//!   Maglev-style selection as related-work baselines,
//! * [`flow_state`] / [`flow_table`] — the per-flow stickiness table the
//!   load balancer learns from acceptance SYN-ACKs: sharded, optionally
//!   capacity-bounded with per-cause eviction accounting, and with
//!   incremental (O(expired)) idle expiry,
//! * [`lb_node`] — the load balancer simulation node: SRH insertion on new
//!   flows, flow learning, and steering of established flows,
//! * [`client`] — the open-loop traffic generator / measurement client,
//! * [`spec`] — the **unified experiment schema**: a serde-round-trippable
//!   [`ExperimentSpec`] = `workload × cluster × topology × scenario ×
//!   policy`,
//! * [`runner`] — the one [`Runner`] every experiment goes through: it
//!   streams the workload on demand and advances the simulation in
//!   segments around the scheduled control events (a static cluster is the
//!   degenerate single-segment case),
//! * [`testbed`] / [`experiment`] — legacy configuration shapes, now thin
//!   shims over `spec` + `runner`,
//! * [`calibration`] — the λ₀ (maximum sustainable rate) bootstrap.
//!
//! ## Example
//!
//! ```
//! use srlb_core::spec::{ExperimentSpec, PolicyKind};
//! use srlb_core::runner::Runner;
//!
//! let spec = ExperimentSpec::poisson_paper(0.6, PolicyKind::Static { threshold: 4 })
//!     .with_queries(300)
//!     .with_seed(1);
//! let outcome = Runner::new(spec).expect("spec is valid").run();
//! assert!(outcome.collector.completed_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration;
pub mod client;
pub mod dispatch;
pub mod experiment;
pub mod flow_state;
pub mod flow_table;
pub mod lb_node;
pub mod runner;
pub mod spec;
pub mod testbed;

pub use client::ClientNode;
pub use dispatch::{CandidateList, Dispatcher, DispatcherConfig, MAX_CANDIDATES};
pub use experiment::{ExperimentConfig, ExperimentResult, WorkloadKind};
pub use flow_state::{FlowState, FlowStateConfig, FlowStateStats};
pub use flow_table::FlowTable;
pub use lb_node::{LbStats, LoadBalancerNode};
pub use runner::{RunOutcome, Runner, ShardPlanning};
pub use spec::{
    CapacityOverride, ClusterSpec, ExperimentSpec, FlowTableSpec, PolicyKind, ScenarioEvent,
    TimedEvent, WorkloadSpec,
};
pub use testbed::{Testbed, TestbedConfig, TestbedResult};

/// Errors produced by experiment configuration and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An experiment configuration was invalid.
    InvalidConfig(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}
