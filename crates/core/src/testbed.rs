//! Wiring of the simulated data centre (compatibility layer).
//!
//! A [`Testbed`] assembles the client, the load balancer and `N` backend
//! servers and replays a request trace.  Since the unified
//! [`Runner`](crate::runner::Runner) refactor it is a thin client of it:
//! [`Testbed::run`] wraps the trace into an [`ExperimentSpec`] with an
//! empty scenario — the degenerate single-segment run.  The
//! [`TestbedConfig`] now names its link latencies through a declarative
//! [`TopologyModel`] rather than a single uniform duration, so
//! latency-asymmetric topologies are available here too.

use serde::{Deserialize, Serialize};

use srlb_metrics::ResponseTimeCollector;
use srlb_server::{PolicyConfig, ServerStats};
use srlb_sim::TopologyModel;
use srlb_workload::Request;

use crate::dispatch::DispatcherConfig;
use crate::lb_node::LbStats;
use crate::runner::Runner;
use crate::spec::{ClusterSpec, ExperimentSpec, FaultPlan, PolicyKind, WorkloadSpec};
use crate::CoreError;

/// Static configuration of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Number of backend servers (the paper uses 12).
    pub servers: usize,
    /// Worker threads per server (the paper uses 32).
    pub workers: usize,
    /// CPU cores per server (the paper's VMs have 2).
    pub cores: usize,
    /// TCP backlog per server (the paper uses 128).
    pub backlog: usize,
    /// Connection acceptance policy run on every server.
    pub policy: PolicyConfig,
    /// Candidate-selection policy at the load balancer.
    pub dispatcher: DispatcherConfig,
    /// Link-latency model of the cluster.
    pub topology: TopologyModel,
    /// Whether servers record per-change load samples (Figure 4).
    pub record_load: bool,
    /// Random seed.
    pub seed: u64,
}

impl TestbedConfig {
    /// The paper's testbed: 12 servers × 32 workers, backlog 128, uniform
    /// 50 µs links, with the given policy and dispatcher.
    pub fn paper(policy: PolicyConfig, dispatcher: DispatcherConfig) -> Self {
        TestbedConfig {
            servers: 12,
            workers: 32,
            cores: 2,
            backlog: 128,
            policy,
            dispatcher,
            topology: TopologyModel::paper(),
            record_load: false,
            seed: 1,
        }
    }

    /// The [`ExperimentSpec`] that replays `requests` on this testbed.
    pub fn to_spec(&self, requests: Vec<Request>) -> ExperimentSpec {
        ExperimentSpec {
            name: "testbed".to_string(),
            seed: self.seed,
            workload: WorkloadSpec::Trace { requests },
            cluster: ClusterSpec {
                initial_servers: self.servers,
                max_servers: self.servers,
                workers: self.workers,
                cores: self.cores,
                backlog: self.backlog,
                capacity_overrides: Vec::new(),
                vips: 1,
                lb_count: 1,
                flow_table: crate::spec::FlowTableSpec::default(),
                recover_flows: false,
                record_load: self.record_load,
            },
            topology: self.topology,
            scenario: Vec::new(),
            policy: PolicyKind::Explicit {
                dispatcher: self.dispatcher,
                acceptance: self.policy,
            },
            request_delay_ms: 0.0,
            faults: FaultPlan::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any count is zero or the
    /// dispatcher fan-out exceeds the number of servers.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.to_spec(Vec::new()).validate()
    }
}

/// Everything measured during one testbed run.
#[derive(Debug, Clone)]
pub struct TestbedResult {
    /// Per-request records collected by the client.
    pub collector: ResponseTimeCollector,
    /// Per-server counters, indexed by server.
    pub server_stats: Vec<ServerStats>,
    /// Per-server `(time_seconds, busy_workers)` samples (empty unless
    /// `record_load` was enabled).
    pub load_series: Vec<Vec<(f64, usize)>>,
    /// Per-server acceptance ratios of the policy agent.
    pub acceptance_ratios: Vec<f64>,
    /// Load balancer counters.
    pub lb_stats: LbStats,
    /// Simulated duration of the run in seconds.
    pub duration_seconds: f64,
    /// Total simulation events processed.
    pub events: u64,
}

/// The assembled cluster, ready to replay a trace.
#[derive(Debug)]
pub struct Testbed {
    config: TestbedConfig,
    plan: srlb_net::AddressPlan,
}

impl Testbed {
    /// Creates a testbed from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: TestbedConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Testbed {
            config,
            plan: srlb_net::AddressPlan::default(),
        })
    }

    /// The addressing plan used by the testbed.
    pub fn plan(&self) -> &srlb_net::AddressPlan {
        &self.plan
    }

    /// Replays `requests` through the cluster and collects the results.
    ///
    /// The run ends when every event has been processed (all requests
    /// completed, reset, or abandoned), bounded by a generous safety limit on
    /// the event count.
    pub fn run(&self, requests: Vec<Request>) -> TestbedResult {
        let outcome = Runner::new(self.config.to_spec(requests))
            // srlb-lint: allow(panic-hygiene) -- Testbed::new already ran the same validation; a late failure is a bug worth aborting on
            .expect("configuration validated at construction")
            .run();
        TestbedResult {
            collector: outcome.collector,
            server_stats: outcome.server_stats,
            load_series: outcome.load_series,
            acceptance_ratios: outcome.acceptance_ratios,
            lb_stats: outcome.lb_stats,
            duration_seconds: outcome.duration_seconds,
            events: outcome.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlb_workload::{PoissonWorkload, ServiceTime};

    fn small_config(policy: PolicyConfig, k: usize) -> TestbedConfig {
        TestbedConfig {
            servers: 4,
            workers: 4,
            cores: 2,
            backlog: 16,
            policy,
            dispatcher: DispatcherConfig::Random { k },
            topology: TopologyModel::paper(),
            record_load: true,
            seed: 42,
        }
    }

    #[test]
    fn every_request_completes_under_light_load() {
        let requests =
            PoissonWorkload::new(50.0, 300, ServiceTime::Exponential { mean_ms: 20.0 }).generate(3);
        let testbed = Testbed::new(small_config(PolicyConfig::Static { threshold: 2 }, 2)).unwrap();
        let result = testbed.run(requests);
        assert_eq!(result.collector.len(), 300);
        assert_eq!(result.collector.completed_count(), 300);
        assert_eq!(result.collector.reset_count(), 0);
        let served: u64 = result.server_stats.iter().map(|s| s.completed).sum();
        assert_eq!(served, 300);
        assert_eq!(result.lb_stats.new_flows, 300);
        assert_eq!(result.lb_stats.flows_learned, 300);
        assert!(result.duration_seconds > 0.0);
        assert!(result.events > 300);
        // Load was recorded on every server that served something.
        assert!(result.load_series.iter().any(|s| !s.is_empty()));
    }

    #[test]
    fn response_times_include_service_and_network() {
        let requests =
            PoissonWorkload::new(10.0, 50, ServiceTime::Constant { ms: 30.0 }).generate(1);
        let testbed = Testbed::new(small_config(PolicyConfig::Static { threshold: 2 }, 2)).unwrap();
        let result = testbed.run(requests);
        let summary = result.collector.summary(None);
        // Every response takes at least the 30 ms service time plus a few
        // network hops, and under this trivial load not much more.
        assert!(summary.min().unwrap() >= 30.0);
        assert!(summary.max().unwrap() < 100.0);
    }

    #[test]
    fn overload_produces_resets() {
        // 2 servers x 2 workers with tiny backlogs and a service time far
        // beyond what the offered load allows: most requests must be reset.
        let config = TestbedConfig {
            servers: 2,
            workers: 2,
            cores: 1,
            backlog: 2,
            policy: PolicyConfig::Static { threshold: 2 },
            dispatcher: DispatcherConfig::Random { k: 2 },
            topology: TopologyModel::paper(),
            record_load: false,
            seed: 7,
        };
        let requests =
            PoissonWorkload::new(200.0, 400, ServiceTime::Constant { ms: 500.0 }).generate(2);
        let result = Testbed::new(config).unwrap().run(requests);
        assert!(
            result.collector.reset_count() > 0,
            "backlog overflow must reset"
        );
        assert_eq!(
            result.collector.len(),
            400,
            "every request is accounted for"
        );
        let resets: u64 = result.server_stats.iter().map(|s| s.resets).sum();
        assert_eq!(resets as usize, result.collector.reset_count());
    }

    #[test]
    fn rr_baseline_never_consults_the_policy() {
        let requests =
            PoissonWorkload::new(50.0, 200, ServiceTime::Exponential { mean_ms: 10.0 }).generate(9);
        let testbed = Testbed::new(small_config(PolicyConfig::NeverAccept, 1)).unwrap();
        let result = testbed.run(requests);
        assert_eq!(result.collector.completed_count(), 200);
        let forced: u64 = result.server_stats.iter().map(|s| s.forced_accepts).sum();
        let by_policy: u64 = result
            .server_stats
            .iter()
            .map(|s| s.accepted_by_policy)
            .sum();
        assert_eq!(forced, 200);
        assert_eq!(by_policy, 0);
        assert!(result.acceptance_ratios.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn hunting_spreads_connections_across_both_candidates() {
        let requests = PoissonWorkload::new(400.0, 600, ServiceTime::Exponential { mean_ms: 40.0 })
            .generate(11);
        let testbed = Testbed::new(small_config(PolicyConfig::Static { threshold: 1 }, 2)).unwrap();
        let result = testbed.run(requests);
        let passed: u64 = result.server_stats.iter().map(|s| s.passed_on).sum();
        let forced: u64 = result.server_stats.iter().map(|s| s.forced_accepts).sum();
        assert!(passed > 0, "a threshold of 1 under load must pass some on");
        assert_eq!(passed, forced, "every pass-on lands on the final candidate");
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = small_config(PolicyConfig::Static { threshold: 2 }, 2);
        config.servers = 0;
        assert!(Testbed::new(config).is_err());

        let mut config = small_config(PolicyConfig::Static { threshold: 2 }, 2);
        config.workers = 0;
        assert!(Testbed::new(config).is_err());

        let config = small_config(PolicyConfig::Static { threshold: 2 }, 10);
        assert!(matches!(
            Testbed::new(config),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn identical_seeds_give_identical_results() {
        let workload = PoissonWorkload::new(80.0, 150, ServiceTime::Exponential { mean_ms: 25.0 });
        let run = |seed: u64| {
            let mut config = small_config(PolicyConfig::Static { threshold: 2 }, 2);
            config.seed = seed;
            let result = Testbed::new(config).unwrap().run(workload.generate(5));
            result.collector.summary(None).mean()
        };
        assert_eq!(run(1), run(1));
    }
}
