//! Wiring of the simulated data centre.
//!
//! A [`Testbed`] assembles the client, the load balancer and `N` backend
//! servers into one [`srlb_sim::Network`], replays a request trace, and
//! returns every measurement the paper's figures need.

use serde::{Deserialize, Serialize};

use srlb_metrics::ResponseTimeCollector;
use srlb_net::{AddressPlan, Packet, ServerId};
use srlb_server::{Directory, PolicyConfig, ServerConfig, ServerNode, ServerStats};
use srlb_sim::{Network, NodeId, RunLimit, SimDuration, Topology};
use srlb_workload::Request;

use crate::client::{client_addr_count, ClientNode};
use crate::dispatch::DispatcherConfig;
use crate::lb_node::{LbStats, LoadBalancerNode};
use crate::CoreError;

/// Static configuration of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Number of backend servers (the paper uses 12).
    pub servers: usize,
    /// Worker threads per server (the paper uses 32).
    pub workers: usize,
    /// CPU cores per server (the paper's VMs have 2).
    pub cores: usize,
    /// TCP backlog per server (the paper uses 128).
    pub backlog: usize,
    /// Connection acceptance policy run on every server.
    pub policy: PolicyConfig,
    /// Candidate-selection policy at the load balancer.
    pub dispatcher: DispatcherConfig,
    /// One-way link latency between any two nodes.
    pub link_latency: SimDuration,
    /// Whether servers record per-change load samples (Figure 4).
    pub record_load: bool,
    /// Random seed.
    pub seed: u64,
}

impl TestbedConfig {
    /// The paper's testbed: 12 servers × 32 workers, backlog 128, 50 µs
    /// links, with the given policy and dispatcher.
    pub fn paper(policy: PolicyConfig, dispatcher: DispatcherConfig) -> Self {
        TestbedConfig {
            servers: 12,
            workers: 32,
            cores: 2,
            backlog: 128,
            policy,
            dispatcher,
            link_latency: SimDuration::from_micros(50),
            record_load: false,
            seed: 1,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any count is zero or the
    /// dispatcher fan-out exceeds the number of servers.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.servers == 0 {
            return Err(CoreError::InvalidConfig(
                "at least one server required".into(),
            ));
        }
        if self.workers == 0 {
            return Err(CoreError::InvalidConfig(
                "at least one worker per server required".into(),
            ));
        }
        if self.cores == 0 {
            return Err(CoreError::InvalidConfig(
                "at least one core per server required".into(),
            ));
        }
        if self.dispatcher.fanout() == 0 {
            return Err(CoreError::InvalidConfig(
                "dispatcher fan-out must be ≥ 1".into(),
            ));
        }
        if self.dispatcher.fanout() > self.servers {
            return Err(CoreError::InvalidConfig(format!(
                "dispatcher fan-out {} exceeds server count {}",
                self.dispatcher.fanout(),
                self.servers
            )));
        }
        Ok(())
    }
}

/// Everything measured during one testbed run.
#[derive(Debug, Clone)]
pub struct TestbedResult {
    /// Per-request records collected by the client.
    pub collector: ResponseTimeCollector,
    /// Per-server counters, indexed by server.
    pub server_stats: Vec<ServerStats>,
    /// Per-server `(time_seconds, busy_workers)` samples (empty unless
    /// `record_load` was enabled).
    pub load_series: Vec<Vec<(f64, usize)>>,
    /// Per-server acceptance ratios of the policy agent.
    pub acceptance_ratios: Vec<f64>,
    /// Load balancer counters.
    pub lb_stats: LbStats,
    /// Simulated duration of the run in seconds.
    pub duration_seconds: f64,
    /// Total simulation events processed.
    pub events: u64,
}

/// The assembled cluster, ready to replay a trace.
#[derive(Debug)]
pub struct Testbed {
    config: TestbedConfig,
    plan: AddressPlan,
}

impl Testbed {
    /// Creates a testbed from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: TestbedConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Testbed {
            config,
            plan: AddressPlan::default(),
        })
    }

    /// The addressing plan used by the testbed.
    pub fn plan(&self) -> &AddressPlan {
        &self.plan
    }

    /// Replays `requests` through the cluster and collects the results.
    ///
    /// The run ends when every event has been processed (all requests
    /// completed, reset, or abandoned), bounded by a generous safety limit on
    /// the event count.
    pub fn run(&self, requests: Vec<Request>) -> TestbedResult {
        let config = &self.config;
        let plan = &self.plan;
        let n = config.servers;

        // Node ids are assigned by insertion order: client, LB, then servers.
        let client_id = NodeId(0);
        let lb_id = NodeId(1);
        let server_ids: Vec<NodeId> = (0..n).map(|i| NodeId(2 + i)).collect();

        // Data-plane directory.
        let mut directory = Directory::new();
        for a in 0..client_addr_count(requests.len()) {
            directory.register(plan.client_addr(a), client_id);
        }
        directory.register(plan.lb_addr(), lb_id);
        directory.register(plan.vip(0), lb_id);
        for (i, &sid) in server_ids.iter().enumerate() {
            directory.register(plan.server_addr(ServerId(i as u32)), sid);
        }

        let request_count = requests.len() as u64;
        let mut network: Network<Packet> =
            Network::new(config.seed, Topology::uniform(config.link_latency));

        let client = ClientNode::new(plan.clone(), plan.vip(0), directory.clone(), requests);
        let added_client = network.add_node(client);

        let server_addrs: Vec<_> = plan.server_addrs(n as u32).collect();
        let lb = LoadBalancerNode::new(
            plan.lb_addr(),
            plan.vip(0),
            directory.clone(),
            config.dispatcher.build(server_addrs),
        );
        let added_lb = network.add_node(lb);

        let mut added_servers = Vec::with_capacity(n);
        for i in 0..n {
            let server_config = ServerConfig {
                server_index: i as u32,
                addr: plan.server_addr(ServerId(i as u32)),
                lb_addr: plan.lb_addr(),
                workers: config.workers,
                cores: config.cores,
                backlog: config.backlog,
                policy: config.policy,
                record_load: config.record_load,
            };
            added_servers.push(network.add_node(ServerNode::new(server_config, directory.clone())));
        }

        debug_assert_eq!(added_client, client_id);
        debug_assert_eq!(added_lb, lb_id);
        debug_assert_eq!(added_servers, server_ids);

        // Each request generates a small, bounded number of events (SYN,
        // hunt hops, SYN-ACK, request, service timer, response, …); 64 per
        // request is a generous safety margin against runaway loops.
        let limit = RunLimit::max_events(request_count.saturating_mul(64) + 10_000);
        let stats = network.run_with_limit(limit);

        let client_node: ClientNode = network
            .take_node(client_id)
            .expect("client node present after run");
        let mut server_stats = Vec::with_capacity(n);
        let mut load_series = Vec::with_capacity(n);
        let mut acceptance_ratios = Vec::with_capacity(n);
        for &sid in &server_ids {
            let server: ServerNode = network
                .take_node(sid)
                .expect("server node present after run");
            server_stats.push(server.stats());
            acceptance_ratios.push(server.agent().acceptance_ratio());
            load_series.push(server.load_samples().to_vec());
        }
        let lb_node: LoadBalancerNode = network
            .take_node(lb_id)
            .expect("load balancer node present after run");

        TestbedResult {
            collector: client_node.into_collector(),
            server_stats,
            load_series,
            acceptance_ratios,
            lb_stats: lb_node.stats(),
            duration_seconds: stats.last_event_time.as_secs_f64(),
            events: stats.events_processed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlb_workload::{PoissonWorkload, ServiceTime};

    fn small_config(policy: PolicyConfig, k: usize) -> TestbedConfig {
        TestbedConfig {
            servers: 4,
            workers: 4,
            cores: 2,
            backlog: 16,
            policy,
            dispatcher: DispatcherConfig::Random { k },
            link_latency: SimDuration::from_micros(50),
            record_load: true,
            seed: 42,
        }
    }

    #[test]
    fn every_request_completes_under_light_load() {
        let requests =
            PoissonWorkload::new(50.0, 300, ServiceTime::Exponential { mean_ms: 20.0 }).generate(3);
        let testbed = Testbed::new(small_config(PolicyConfig::Static { threshold: 2 }, 2)).unwrap();
        let result = testbed.run(requests);
        assert_eq!(result.collector.len(), 300);
        assert_eq!(result.collector.completed_count(), 300);
        assert_eq!(result.collector.reset_count(), 0);
        let served: u64 = result.server_stats.iter().map(|s| s.completed).sum();
        assert_eq!(served, 300);
        assert_eq!(result.lb_stats.new_flows, 300);
        assert_eq!(result.lb_stats.flows_learned, 300);
        assert!(result.duration_seconds > 0.0);
        assert!(result.events > 300);
        // Load was recorded on every server that served something.
        assert!(result.load_series.iter().any(|s| !s.is_empty()));
    }

    #[test]
    fn response_times_include_service_and_network() {
        let requests =
            PoissonWorkload::new(10.0, 50, ServiceTime::Constant { ms: 30.0 }).generate(1);
        let testbed = Testbed::new(small_config(PolicyConfig::Static { threshold: 2 }, 2)).unwrap();
        let result = testbed.run(requests);
        let summary = result.collector.summary(None);
        // Every response takes at least the 30 ms service time plus a few
        // network hops, and under this trivial load not much more.
        assert!(summary.min().unwrap() >= 30.0);
        assert!(summary.max().unwrap() < 100.0);
    }

    #[test]
    fn overload_produces_resets() {
        // 2 servers x 2 workers with tiny backlogs and a service time far
        // beyond what the offered load allows: most requests must be reset.
        let config = TestbedConfig {
            servers: 2,
            workers: 2,
            cores: 1,
            backlog: 2,
            policy: PolicyConfig::Static { threshold: 2 },
            dispatcher: DispatcherConfig::Random { k: 2 },
            link_latency: SimDuration::from_micros(50),
            record_load: false,
            seed: 7,
        };
        let requests =
            PoissonWorkload::new(200.0, 400, ServiceTime::Constant { ms: 500.0 }).generate(2);
        let result = Testbed::new(config).unwrap().run(requests);
        assert!(
            result.collector.reset_count() > 0,
            "backlog overflow must reset"
        );
        assert_eq!(
            result.collector.len(),
            400,
            "every request is accounted for"
        );
        let resets: u64 = result.server_stats.iter().map(|s| s.resets).sum();
        assert_eq!(resets as usize, result.collector.reset_count());
    }

    #[test]
    fn rr_baseline_never_consults_the_policy() {
        let requests =
            PoissonWorkload::new(50.0, 200, ServiceTime::Exponential { mean_ms: 10.0 }).generate(9);
        let testbed = Testbed::new(small_config(PolicyConfig::NeverAccept, 1)).unwrap();
        let result = testbed.run(requests);
        assert_eq!(result.collector.completed_count(), 200);
        let forced: u64 = result.server_stats.iter().map(|s| s.forced_accepts).sum();
        let by_policy: u64 = result
            .server_stats
            .iter()
            .map(|s| s.accepted_by_policy)
            .sum();
        assert_eq!(forced, 200);
        assert_eq!(by_policy, 0);
        assert!(result.acceptance_ratios.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn hunting_spreads_connections_across_both_candidates() {
        let requests = PoissonWorkload::new(400.0, 600, ServiceTime::Exponential { mean_ms: 40.0 })
            .generate(11);
        let testbed = Testbed::new(small_config(PolicyConfig::Static { threshold: 1 }, 2)).unwrap();
        let result = testbed.run(requests);
        let passed: u64 = result.server_stats.iter().map(|s| s.passed_on).sum();
        let forced: u64 = result.server_stats.iter().map(|s| s.forced_accepts).sum();
        assert!(passed > 0, "a threshold of 1 under load must pass some on");
        assert_eq!(passed, forced, "every pass-on lands on the final candidate");
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut config = small_config(PolicyConfig::Static { threshold: 2 }, 2);
        config.servers = 0;
        assert!(Testbed::new(config).is_err());

        let mut config = small_config(PolicyConfig::Static { threshold: 2 }, 2);
        config.workers = 0;
        assert!(Testbed::new(config).is_err());

        let config = small_config(PolicyConfig::Static { threshold: 2 }, 10);
        assert!(matches!(
            Testbed::new(config),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn identical_seeds_give_identical_results() {
        let workload = PoissonWorkload::new(80.0, 150, ServiceTime::Exponential { mean_ms: 25.0 });
        let run = |seed: u64| {
            let mut config = small_config(PolicyConfig::Static { threshold: 2 }, 2);
            config.seed = seed;
            let result = Testbed::new(config).unwrap().run(workload.generate(5));
            result.collector.summary(None).mean()
        };
        assert_eq!(run(1), run(1));
    }
}
