//! Candidate-server selection (paper Section II-B).
//!
//! When a new flow arrives, the load balancer selects the *list of candidate
//! servers* to place in the Service Hunting SRH.  The paper uses two servers
//! chosen uniformly at random (citing the power-of-two-choices result) but
//! notes that consistent hashing is another possibility; this module
//! implements:
//!
//! * [`RandomDispatcher`] — `k` distinct servers chosen uniformly at random
//!   (`k = 1` degenerates to the paper's RR baseline, `k = 2` is SRLB's
//!   default),
//! * [`ConsistentHashDispatcher`] — a hash ring with virtual nodes; the
//!   candidates are the first `k` distinct servers clockwise from the flow's
//!   hash (Maglev/Ananta-style flow affinity without per-flow state),
//! * [`MaglevDispatcher`] — Maglev's permutation-filled lookup table.

use std::net::Ipv6Addr;

use rand::RngCore;
use serde::{Deserialize, Serialize};
use srlb_net::FlowKey;

/// A candidate-selection policy.
pub trait Dispatcher: std::fmt::Debug + Send {
    /// Returns the ordered candidate list for a new flow (without the
    /// trailing VIP segment, which the load balancer appends).
    fn candidates(&mut self, flow: &FlowKey, rng: &mut dyn RngCore) -> Vec<Ipv6Addr>;

    /// Number of candidates produced per flow.
    fn fanout(&self) -> usize;

    /// Short name for reports.
    fn name(&self) -> String;
}

/// `k` distinct servers chosen uniformly at random.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomDispatcher {
    servers: Vec<Ipv6Addr>,
    k: usize,
}

impl RandomDispatcher {
    /// Creates a dispatcher picking `k` distinct servers from `servers`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or `k` is zero.
    pub fn new(servers: Vec<Ipv6Addr>, k: usize) -> Self {
        assert!(!servers.is_empty(), "at least one server is required");
        assert!(k > 0, "k must be at least 1");
        let k = k.min(servers.len());
        RandomDispatcher { servers, k }
    }

    /// The paper's default: two random candidates.
    pub fn power_of_two(servers: Vec<Ipv6Addr>) -> Self {
        Self::new(servers, 2)
    }

    /// The RR baseline: a single random server (no hunting).
    pub fn single_random(servers: Vec<Ipv6Addr>) -> Self {
        Self::new(servers, 1)
    }
}

impl Dispatcher for RandomDispatcher {
    fn candidates(&mut self, _flow: &FlowKey, rng: &mut dyn RngCore) -> Vec<Ipv6Addr> {
        // Partial Fisher-Yates over indices: draw k distinct servers.
        let n = self.servers.len();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut out = Vec::with_capacity(self.k);
        for i in 0..self.k {
            let j = i + (rng.next_u64() as usize) % (n - i);
            indices.swap(i, j);
            out.push(self.servers[indices[i]]);
        }
        out
    }

    fn fanout(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!("random-{}", self.k)
    }
}

/// A consistent-hashing ring with virtual nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistentHashDispatcher {
    /// `(point, server)` pairs sorted by point.
    ring: Vec<(u64, Ipv6Addr)>,
    k: usize,
    servers: usize,
}

impl ConsistentHashDispatcher {
    /// Creates a ring with `vnodes` virtual nodes per server, returning `k`
    /// candidates per flow.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or `k`/`vnodes` is zero.
    pub fn new(servers: Vec<Ipv6Addr>, vnodes: usize, k: usize) -> Self {
        assert!(!servers.is_empty(), "at least one server is required");
        assert!(k > 0, "k must be at least 1");
        assert!(
            vnodes > 0,
            "at least one virtual node per server is required"
        );
        let mut ring = Vec::with_capacity(servers.len() * vnodes);
        for server in &servers {
            for v in 0..vnodes {
                ring.push((Self::point(*server, v as u64), *server));
            }
        }
        ring.sort_unstable();
        let k = k.min(servers.len());
        ConsistentHashDispatcher {
            ring,
            k,
            servers: servers.len(),
        }
    }

    fn point(server: Ipv6Addr, vnode: u64) -> u64 {
        // FNV-1a over the address octets and the vnode index, followed by a
        // SplitMix64 finaliser: FNV alone leaves the high bits (which drive
        // the ring ordering) poorly mixed for short, similar inputs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in server.octets() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for b in vnode.to_be_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        mix64(h)
    }

    /// Number of points on the ring.
    pub fn ring_size(&self) -> usize {
        self.ring.len()
    }
}

/// SplitMix64 finaliser, used to spread hash values uniformly over the full
/// 64-bit range before they are used as ring points or table indices.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Dispatcher for ConsistentHashDispatcher {
    fn candidates(&mut self, flow: &FlowKey, _rng: &mut dyn RngCore) -> Vec<Ipv6Addr> {
        let h = mix64(flow.stable_hash());
        let start = self.ring.partition_point(|&(p, _)| p < h);
        let mut out: Vec<Ipv6Addr> = Vec::with_capacity(self.k);
        for i in 0..self.ring.len() {
            let (_, server) = self.ring[(start + i) % self.ring.len()];
            if !out.contains(&server) {
                out.push(server);
                if out.len() == self.k {
                    break;
                }
            }
        }
        out
    }

    fn fanout(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!("consistent-hash-{}x{}", self.servers, self.k)
    }
}

/// A Maglev-style lookup table (Eisenbud et al., NSDI 2016).
///
/// Each server fills the table following its own permutation of the table
/// slots, producing near-uniform slot ownership with minimal disruption on
/// membership change.  Candidates for a flow are the owners of `k`
/// consecutive slots starting at the flow's hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaglevDispatcher {
    table: Vec<Ipv6Addr>,
    k: usize,
    servers: usize,
}

impl MaglevDispatcher {
    /// Builds the lookup table.  `table_size` should be a prime noticeably
    /// larger than the number of servers (Maglev uses 65537 by default; the
    /// tests use smaller primes).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty, `k` is zero, or `table_size` is smaller
    /// than the number of servers.
    pub fn new(servers: Vec<Ipv6Addr>, table_size: usize, k: usize) -> Self {
        assert!(!servers.is_empty(), "at least one server is required");
        assert!(k > 0, "k must be at least 1");
        assert!(
            table_size >= servers.len(),
            "table must be at least as large as the server set"
        );
        let n = servers.len();
        let m = table_size;

        // Per-server permutation parameters (offset, skip), as in the paper.
        let params: Vec<(usize, usize)> = servers
            .iter()
            .map(|s| {
                let h1 = Self::hash(s, 0xdead_beef);
                let h2 = Self::hash(s, 0x1234_5678);
                ((h1 % m as u64) as usize, (h2 % (m as u64 - 1) + 1) as usize)
            })
            .collect();

        let mut table: Vec<Option<Ipv6Addr>> = vec![None; m];
        let mut next = vec![0usize; n];
        let mut filled = 0;
        while filled < m {
            for i in 0..n {
                if filled == m {
                    break;
                }
                // Find this server's next preferred empty slot.
                loop {
                    let (offset, skip) = params[i];
                    let slot = (offset + skip * next[i]) % m;
                    next[i] += 1;
                    if table[slot].is_none() {
                        table[slot] = Some(servers[i]);
                        filled += 1;
                        break;
                    }
                }
            }
        }
        MaglevDispatcher {
            table: table
                .into_iter()
                .map(|s| s.expect("table filled"))
                .collect(),
            k: k.min(n),
            servers: n,
        }
    }

    fn hash(server: &Ipv6Addr, salt: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
        for b in server.octets() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The lookup table size.
    pub fn table_size(&self) -> usize {
        self.table.len()
    }

    /// Fraction of table slots owned by each distinct server, for uniformity
    /// checks.
    pub fn ownership(&self) -> std::collections::HashMap<Ipv6Addr, usize> {
        let mut map = std::collections::HashMap::new();
        for s in &self.table {
            *map.entry(*s).or_insert(0) += 1;
        }
        map
    }
}

impl Dispatcher for MaglevDispatcher {
    fn candidates(&mut self, flow: &FlowKey, _rng: &mut dyn RngCore) -> Vec<Ipv6Addr> {
        let m = self.table.len();
        let start = (mix64(flow.stable_hash()) % m as u64) as usize;
        let mut out: Vec<Ipv6Addr> = Vec::with_capacity(self.k);
        for i in 0..m {
            let server = self.table[(start + i) % m];
            if !out.contains(&server) {
                out.push(server);
                if out.len() == self.k {
                    break;
                }
            }
        }
        out
    }

    fn fanout(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!("maglev-{}x{}", self.servers, self.k)
    }
}

/// Serialisable dispatcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatcherConfig {
    /// `k` servers chosen uniformly at random.
    Random {
        /// Number of candidates per flow.
        k: usize,
    },
    /// Consistent hashing with virtual nodes.
    ConsistentHash {
        /// Virtual nodes per server.
        vnodes: usize,
        /// Number of candidates per flow.
        k: usize,
    },
    /// Maglev lookup table.
    Maglev {
        /// Lookup table size (use a prime).
        table_size: usize,
        /// Number of candidates per flow.
        k: usize,
    },
}

impl DispatcherConfig {
    /// The paper's default: two random candidates.
    pub fn paper_default() -> Self {
        DispatcherConfig::Random { k: 2 }
    }

    /// Builds the dispatcher over the given server set.
    pub fn build(&self, servers: Vec<Ipv6Addr>) -> Box<dyn Dispatcher> {
        match *self {
            DispatcherConfig::Random { k } => Box::new(RandomDispatcher::new(servers, k)),
            DispatcherConfig::ConsistentHash { vnodes, k } => {
                Box::new(ConsistentHashDispatcher::new(servers, vnodes, k))
            }
            DispatcherConfig::Maglev { table_size, k } => {
                Box::new(MaglevDispatcher::new(servers, table_size, k))
            }
        }
    }

    /// Number of candidates per flow.
    pub fn fanout(&self) -> usize {
        match *self {
            DispatcherConfig::Random { k }
            | DispatcherConfig::ConsistentHash { k, .. }
            | DispatcherConfig::Maglev { k, .. } => k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlb_net::{AddressPlan, Protocol, ServerId};
    use srlb_sim::SimRng;

    fn servers(n: u32) -> Vec<Ipv6Addr> {
        let plan = AddressPlan::default();
        (0..n).map(|i| plan.server_addr(ServerId(i))).collect()
    }

    fn flow(port: u16) -> FlowKey {
        let plan = AddressPlan::default();
        FlowKey::new(plan.client_addr(0), plan.vip(0), port, 80, Protocol::Tcp)
    }

    #[test]
    fn random_dispatcher_returns_distinct_candidates() {
        let mut d = RandomDispatcher::power_of_two(servers(12));
        let mut rng = SimRng::new(1);
        for port in 0..1000 {
            let c = d.candidates(&flow(port), &mut rng);
            assert_eq!(c.len(), 2);
            assert_ne!(c[0], c[1], "candidates must be distinct");
        }
        assert_eq!(d.fanout(), 2);
        assert_eq!(d.name(), "random-2");
    }

    #[test]
    fn random_dispatcher_is_roughly_uniform() {
        let all = servers(12);
        let mut d = RandomDispatcher::single_random(all.clone());
        let mut rng = SimRng::new(7);
        let mut counts = std::collections::HashMap::new();
        let trials = 24_000;
        for port in 0..trials {
            let c = d.candidates(&flow(port as u16), &mut rng);
            *counts.entry(c[0]).or_insert(0usize) += 1;
        }
        for s in &all {
            let count = counts.get(s).copied().unwrap_or(0);
            let expected = trials / 12;
            assert!(
                (count as f64 - expected as f64).abs() < expected as f64 * 0.15,
                "server {s} got {count}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn random_dispatcher_k_capped_at_server_count() {
        let mut d = RandomDispatcher::new(servers(3), 10);
        let mut rng = SimRng::new(1);
        let c = d.candidates(&flow(1), &mut rng);
        assert_eq!(c.len(), 3);
        let unique: std::collections::HashSet<_> = c.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn consistent_hash_is_deterministic_per_flow() {
        let mut d = ConsistentHashDispatcher::new(servers(12), 100, 2);
        let mut rng = SimRng::new(1);
        let a = d.candidates(&flow(42), &mut rng);
        let b = d.candidates(&flow(42), &mut rng);
        assert_eq!(a, b, "same flow must map to the same candidates");
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1]);
        assert_eq!(d.ring_size(), 1200);
        assert!(d.name().starts_with("consistent-hash"));
    }

    #[test]
    fn consistent_hash_spreads_flows() {
        let mut d = ConsistentHashDispatcher::new(servers(12), 512, 1);
        let mut rng = SimRng::new(1);
        let mut counts = std::collections::HashMap::new();
        for port in 0..12_000u32 {
            let f = FlowKey::new(
                AddressPlan::default().client_addr(port),
                AddressPlan::default().vip(0),
                (port % 60_000) as u16,
                80,
                Protocol::Tcp,
            );
            let c = d.candidates(&f, &mut rng);
            *counts.entry(c[0]).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 12, "every server should receive some flows");
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(
            *max < min * 4,
            "consistent hashing with many virtual nodes should be reasonably balanced \
             (min {min}, max {max})"
        );
    }

    #[test]
    fn maglev_table_is_nearly_uniform() {
        let d = MaglevDispatcher::new(servers(12), 2039, 2);
        assert_eq!(d.table_size(), 2039);
        let ownership = d.ownership();
        assert_eq!(ownership.len(), 12);
        let max = ownership.values().max().unwrap();
        let min = ownership.values().min().unwrap();
        // Maglev guarantees near-perfect balance of slot ownership.
        assert!(
            max - min <= 2039 / 12 / 5 + 2,
            "maglev ownership should be near-uniform (min {min}, max {max})"
        );
    }

    #[test]
    fn maglev_is_deterministic_and_distinct() {
        let mut d = MaglevDispatcher::new(servers(12), 251, 2);
        let mut rng = SimRng::new(1);
        let a = d.candidates(&flow(7), &mut rng);
        let b = d.candidates(&flow(7), &mut rng);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1]);
        assert_eq!(d.fanout(), 2);
        assert!(d.name().starts_with("maglev"));
    }

    #[test]
    fn config_builds_each_kind() {
        let s = servers(4);
        assert_eq!(DispatcherConfig::paper_default().fanout(), 2);
        let mut rng = SimRng::new(1);
        for config in [
            DispatcherConfig::Random { k: 2 },
            DispatcherConfig::ConsistentHash { vnodes: 16, k: 2 },
            DispatcherConfig::Maglev {
                table_size: 53,
                k: 2,
            },
        ] {
            let mut d = config.build(s.clone());
            let c = d.candidates(&flow(3), &mut rng);
            assert_eq!(c.len(), 2);
            assert_eq!(config.fanout(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_server_set_panics() {
        RandomDispatcher::new(vec![], 2);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        RandomDispatcher::new(servers(2), 0);
    }
}
