//! Candidate-server selection (paper Section II-B).
//!
//! When a new flow arrives, the load balancer selects the *list of candidate
//! servers* to place in the Service Hunting SRH.  The paper uses two servers
//! chosen uniformly at random (citing the power-of-two-choices result) but
//! notes that consistent hashing is another possibility; this module
//! implements:
//!
//! * [`RandomDispatcher`] — `k` distinct servers chosen uniformly at random
//!   (`k = 1` degenerates to the paper's RR baseline, `k = 2` is SRLB's
//!   default),
//! * [`ConsistentHashDispatcher`] — a hash ring with virtual nodes; the
//!   candidates are the first `k` distinct servers clockwise from the flow's
//!   hash (Maglev/Ananta-style flow affinity without per-flow state),
//! * [`MaglevDispatcher`] — Maglev's permutation-filled lookup table,
//! * [`LoadAwareDispatcher`] — a consistent-hash candidate pool re-ranked by
//!   per-server load hints (EWMA-smoothed acceptance/backlog signals fed
//!   back through [`Dispatcher::observe_load`]), after Charon-style
//!   load-aware selection.
//!
//! ## Allocation-free selection
//!
//! Dispatchers write their candidates into a caller-supplied, reusable
//! [`CandidateList`] ([`Dispatcher::candidates_into`]) instead of returning
//! a fresh `Vec` per flow, so the per-flow fast path performs no heap
//! allocation.  The list's inline capacity ([`MAX_CANDIDATES`] `+ 1`)
//! leaves room for the load balancer to append the VIP and hand the same
//! buffer to [`SegmentRoutingHeader::from_route`](srlb_net::SegmentRoutingHeader::from_route).

use std::net::Ipv6Addr;

use rand::RngCore;
use serde::{Deserialize, Serialize};
use srlb_metrics::Ewma;
use srlb_net::{mix64, FlowKey, MAX_SEGMENTS};

/// Maximum number of candidates a dispatcher may produce per flow: one less
/// than the SRH segment capacity, so a full candidate list plus the VIP
/// still fits in one Service Hunting route.
pub const MAX_CANDIDATES: usize = MAX_SEGMENTS - 1;

/// A reusable, fixed-capacity candidate buffer.
///
/// The load balancer keeps one of these alive across flows and hands it to
/// [`Dispatcher::candidates_into`]; after the dispatcher has filled it, the
/// VIP can be appended and the whole slice used as an SRH route, all without
/// touching the allocator.
#[derive(Debug, Clone, Copy)]
pub struct CandidateList {
    addrs: [Ipv6Addr; MAX_SEGMENTS],
    len: usize,
}

impl CandidateList {
    /// Creates an empty list.
    pub fn new() -> Self {
        CandidateList {
            addrs: [Ipv6Addr::UNSPECIFIED; MAX_SEGMENTS],
            len: 0,
        }
    }

    /// Empties the list (the backing storage is retained).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends an address.
    ///
    /// # Panics
    ///
    /// Panics if the list is full ([`MAX_SEGMENTS`] entries); dispatchers
    /// are constructed with `k ≤` [`MAX_CANDIDATES`], which leaves one slot
    /// spare for the VIP.
    pub fn push(&mut self, addr: Ipv6Addr) {
        assert!(
            self.len < MAX_SEGMENTS,
            "candidate list capacity ({MAX_SEGMENTS}) exceeded"
        );
        self.addrs[self.len] = addr;
        self.len += 1;
    }

    /// Number of addresses currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the list holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live addresses as a slice.
    pub fn as_slice(&self) -> &[Ipv6Addr] {
        &self.addrs[..self.len]
    }

    /// Returns `true` if `addr` is already in the list.
    pub fn contains(&self, addr: &Ipv6Addr) -> bool {
        self.as_slice().contains(addr)
    }
}

impl Default for CandidateList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for CandidateList {
    type Target = [Ipv6Addr];

    fn deref(&self) -> &[Ipv6Addr] {
        self.as_slice()
    }
}

/// Draws a uniform integer in `0..n` with Lemire-style rejection sampling
/// (no modulo bias).
///
/// The naive `next_u64() % n` over-selects small residues by up to
/// `2⁶⁴ mod n` draws; the widening-multiply method maps the raw draw to
/// `0..n` through a 128-bit product and rejects only the (vanishingly few)
/// draws that land in the biased low fringe.
fn bounded(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut low = m as u64;
    if low < n {
        // 2^64 mod n, computed without 128-bit division.
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A candidate-selection policy.
pub trait Dispatcher: std::fmt::Debug + Send {
    /// Writes the ordered candidate list for a new flow into `out` (without
    /// the trailing VIP segment, which the load balancer appends).  The
    /// buffer is cleared first; on return it holds exactly
    /// [`Dispatcher::fanout`] (capped at the server count) distinct
    /// addresses.  Performs no heap allocation.
    fn candidates_into(&mut self, flow: &FlowKey, rng: &mut dyn RngCore, out: &mut CandidateList);

    /// Number of candidates produced per flow.
    fn fanout(&self) -> usize;

    /// Short name for reports.
    fn name(&self) -> String;

    /// The current backend set, in construction order.
    fn backends(&self) -> &[Ipv6Addr];

    /// Rebuilds the dispatcher over a new backend set (server churn),
    /// preserving the originally configured parameters (candidate count,
    /// virtual nodes, table size).  The result is identical to constructing
    /// a fresh dispatcher over `servers`, so hash-based dispatchers keep
    /// their minimal-disruption guarantees across add/remove cycles: flows
    /// not owned by a changed backend keep their candidates (exactly for
    /// consistent hashing; within the property-tested tolerance for Maglev).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty.
    fn rebuild(&mut self, servers: Vec<Ipv6Addr>);

    /// Feeds a per-server load observation (e.g. the hint a server attached
    /// to its acceptance SYN-ACK), timestamped in seconds.  Load-oblivious
    /// dispatchers ignore it; [`LoadAwareDispatcher`] folds it into its
    /// per-server EWMA.  Performs no heap allocation.
    fn observe_load(&mut self, _server: Ipv6Addr, _load: f64, _now_s: f64) {}

    /// Convenience wrapper around [`Dispatcher::candidates_into`] returning
    /// a fresh `Vec`.  Allocates; intended for tests and reporting, not the
    /// per-flow fast path.
    fn candidates(&mut self, flow: &FlowKey, rng: &mut dyn RngCore) -> Vec<Ipv6Addr> {
        let mut out = CandidateList::new();
        self.candidates_into(flow, rng, &mut out);
        out.as_slice().to_vec()
    }
}

/// `k` distinct servers chosen uniformly at random.
#[derive(Debug, Clone)]
pub struct RandomDispatcher {
    servers: Vec<Ipv6Addr>,
    k: usize,
    /// The candidate count as configured (before capping at the server
    /// count), so a rebuild over a larger server set can restore it.
    k_config: usize,
    /// Persistent index permutation for the partial Fisher-Yates draw; any
    /// permutation is a valid starting state, so it is never rebuilt.
    scratch: Vec<u32>,
}

impl PartialEq for RandomDispatcher {
    fn eq(&self, other: &Self) -> bool {
        // The scratch permutation is internal state, not configuration.
        self.servers == other.servers && self.k == other.k
    }
}

impl Eq for RandomDispatcher {}

impl RandomDispatcher {
    /// Creates a dispatcher picking `k` distinct servers from `servers`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty, `k` is zero, or `k` (after capping at
    /// the server count) exceeds [`MAX_CANDIDATES`].
    pub fn new(servers: Vec<Ipv6Addr>, k: usize) -> Self {
        assert!(!servers.is_empty(), "at least one server is required");
        assert!(k > 0, "k must be at least 1");
        let k_config = k;
        let k = k.min(servers.len());
        assert!(
            k <= MAX_CANDIDATES,
            "at most {MAX_CANDIDATES} candidates fit in a Service Hunting SRH"
        );
        let scratch = (0..servers.len() as u32).collect();
        RandomDispatcher {
            servers,
            k,
            k_config,
            scratch,
        }
    }

    /// The paper's default: two random candidates.
    pub fn power_of_two(servers: Vec<Ipv6Addr>) -> Self {
        Self::new(servers, 2)
    }

    /// The RR baseline: a single random server (no hunting).
    pub fn single_random(servers: Vec<Ipv6Addr>) -> Self {
        Self::new(servers, 1)
    }
}

impl Dispatcher for RandomDispatcher {
    fn candidates_into(&mut self, _flow: &FlowKey, rng: &mut dyn RngCore, out: &mut CandidateList) {
        // Partial Fisher-Yates over the persistent index permutation: draw k
        // distinct servers without rebuilding `(0..n)` per flow.
        out.clear();
        let n = self.servers.len();
        for i in 0..self.k {
            let j = i + bounded(rng, (n - i) as u64) as usize;
            self.scratch.swap(i, j);
            out.push(self.servers[self.scratch[i] as usize]);
        }
    }

    fn fanout(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!("random-{}", self.k)
    }

    fn backends(&self) -> &[Ipv6Addr] {
        &self.servers
    }

    fn rebuild(&mut self, servers: Vec<Ipv6Addr>) {
        *self = Self::new(servers, self.k_config);
    }
}

/// A consistent-hashing ring with virtual nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsistentHashDispatcher {
    /// `(point, server)` pairs sorted by point.
    ring: Vec<(u64, Ipv6Addr)>,
    k: usize,
    /// The candidate count as configured (before capping).
    k_config: usize,
    /// Virtual nodes per server, kept so a rebuild reproduces the ring.
    vnodes: usize,
    servers: Vec<Ipv6Addr>,
}

impl ConsistentHashDispatcher {
    /// Creates a ring with `vnodes` virtual nodes per server, returning `k`
    /// candidates per flow.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty, `k`/`vnodes` is zero, or `k` (after
    /// capping at the server count) exceeds [`MAX_CANDIDATES`].
    pub fn new(servers: Vec<Ipv6Addr>, vnodes: usize, k: usize) -> Self {
        assert!(!servers.is_empty(), "at least one server is required");
        assert!(k > 0, "k must be at least 1");
        assert!(
            vnodes > 0,
            "at least one virtual node per server is required"
        );
        let mut ring = Vec::with_capacity(servers.len() * vnodes);
        for server in &servers {
            for v in 0..vnodes {
                ring.push((Self::point(*server, v as u64), *server));
            }
        }
        ring.sort_unstable();
        let k_config = k;
        let k = k.min(servers.len());
        assert!(
            k <= MAX_CANDIDATES,
            "at most {MAX_CANDIDATES} candidates fit in a Service Hunting SRH"
        );
        ConsistentHashDispatcher {
            ring,
            k,
            k_config,
            vnodes,
            servers,
        }
    }

    fn point(server: Ipv6Addr, vnode: u64) -> u64 {
        // FNV-1a over the address octets and the vnode index, followed by a
        // SplitMix64 finaliser: FNV alone leaves the high bits (which drive
        // the ring ordering) poorly mixed for short, similar inputs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in server.octets() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for b in vnode.to_be_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        mix64(h)
    }

    /// Number of points on the ring.
    pub fn ring_size(&self) -> usize {
        self.ring.len()
    }
}

impl Dispatcher for ConsistentHashDispatcher {
    fn candidates_into(&mut self, flow: &FlowKey, _rng: &mut dyn RngCore, out: &mut CandidateList) {
        // The flow key's cached stable hash is already SplitMix64-finalised,
        // so it is used as the ring position directly.
        out.clear();
        let h = flow.stable_hash();
        let start = self.ring.partition_point(|&(p, _)| p < h);
        for i in 0..self.ring.len() {
            let (_, server) = self.ring[(start + i) % self.ring.len()];
            if !out.contains(&server) {
                out.push(server);
                if out.len() == self.k {
                    break;
                }
            }
        }
    }

    fn fanout(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!("consistent-hash-{}x{}", self.servers.len(), self.k)
    }

    fn backends(&self) -> &[Ipv6Addr] {
        &self.servers
    }

    fn rebuild(&mut self, servers: Vec<Ipv6Addr>) {
        *self = Self::new(servers, self.vnodes, self.k_config);
    }
}

/// A Maglev-style lookup table (Eisenbud et al., NSDI 2016).
///
/// Each server fills the table following its own permutation of the table
/// slots, producing near-uniform slot ownership with minimal disruption on
/// membership change.  Candidates for a flow are the owners of `k`
/// consecutive slots starting at the flow's hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaglevDispatcher {
    table: Vec<Ipv6Addr>,
    k: usize,
    /// The candidate count as configured (before capping).
    k_config: usize,
    servers: Vec<Ipv6Addr>,
}

impl MaglevDispatcher {
    /// Builds the lookup table.  `table_size` should be a prime noticeably
    /// larger than the number of servers (Maglev uses 65537 by default; the
    /// tests use smaller primes).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty, `k` is zero (or exceeds
    /// [`MAX_CANDIDATES`] after capping at the server count), or
    /// `table_size` is smaller than the number of servers.
    pub fn new(servers: Vec<Ipv6Addr>, table_size: usize, k: usize) -> Self {
        assert!(!servers.is_empty(), "at least one server is required");
        assert!(k > 0, "k must be at least 1");
        assert!(
            table_size >= servers.len(),
            "table must be at least as large as the server set"
        );
        let n = servers.len();
        let m = table_size;

        // Per-server permutation parameters (offset, skip), as in the paper.
        let params: Vec<(usize, usize)> = servers
            .iter()
            .map(|s| {
                let h1 = Self::hash(s, 0xdead_beef);
                let h2 = Self::hash(s, 0x1234_5678);
                ((h1 % m as u64) as usize, (h2 % (m as u64 - 1) + 1) as usize)
            })
            .collect();

        let mut table: Vec<Option<Ipv6Addr>> = vec![None; m];
        let mut next = vec![0usize; n];
        let mut filled = 0;
        while filled < m {
            for i in 0..n {
                if filled == m {
                    break;
                }
                // Find this server's next preferred empty slot.
                loop {
                    let (offset, skip) = params[i];
                    let slot = (offset + skip * next[i]) % m;
                    next[i] += 1;
                    if table[slot].is_none() {
                        table[slot] = Some(servers[i]);
                        filled += 1;
                        break;
                    }
                }
            }
        }
        let k_config = k;
        let k = k.min(n);
        assert!(
            k <= MAX_CANDIDATES,
            "at most {MAX_CANDIDATES} candidates fit in a Service Hunting SRH"
        );
        MaglevDispatcher {
            table: table
                .into_iter()
                // srlb-lint: allow(panic-hygiene) -- Maglev population loop above runs until every table slot is Some
                .map(|s| s.expect("table filled"))
                .collect(),
            k,
            k_config,
            servers,
        }
    }

    fn hash(server: &Ipv6Addr, salt: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
        for b in server.octets() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The lookup table size.
    pub fn table_size(&self) -> usize {
        self.table.len()
    }

    /// Fraction of table slots owned by each distinct server, for uniformity
    /// checks.
    pub fn ownership(&self) -> std::collections::HashMap<Ipv6Addr, usize> {
        let mut map = std::collections::HashMap::new();
        for s in &self.table {
            *map.entry(*s).or_insert(0) += 1;
        }
        map
    }
}

impl Dispatcher for MaglevDispatcher {
    fn candidates_into(&mut self, flow: &FlowKey, _rng: &mut dyn RngCore, out: &mut CandidateList) {
        out.clear();
        let m = self.table.len();
        // The cached stable hash is already finalised; index directly.
        let start = (flow.stable_hash() % m as u64) as usize;
        for i in 0..m {
            let server = self.table[(start + i) % m];
            if !out.contains(&server) {
                out.push(server);
                if out.len() == self.k {
                    break;
                }
            }
        }
    }

    fn fanout(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!("maglev-{}x{}", self.servers.len(), self.k)
    }

    fn backends(&self) -> &[Ipv6Addr] {
        &self.servers
    }

    fn rebuild(&mut self, servers: Vec<Ipv6Addr>) {
        let table_size = self.table.len();
        *self = Self::new(servers, table_size, self.k_config);
    }
}

/// Load-aware candidate selection: a consistent-hash pool re-ranked by
/// per-server load.
///
/// A [`ConsistentHashDispatcher`] produces a deterministic pool of `pool`
/// candidates per flow; the `k` least-loaded of those (by EWMA-smoothed load
/// hints fed in through [`Dispatcher::observe_load`]) become the Service
/// Hunting candidates, in ascending-load order.  Servers with no observation
/// yet count as load 0 so a fresh (or rebuilt) dispatcher degenerates to the
/// pool's natural ring order; ties keep ring order too, so selection is
/// fully deterministic.
#[derive(Debug, Clone)]
pub struct LoadAwareDispatcher {
    inner: ConsistentHashDispatcher,
    k: usize,
    /// The selection count as configured (before capping at the pool size).
    k_config: usize,
    /// Per-server EWMA of observed load, in `inner` backend order.
    loads: Vec<(Ipv6Addr, Ewma)>,
    /// Persistent buffer for the inner pool, so re-ranking allocates nothing.
    scratch: CandidateList,
}

impl PartialEq for LoadAwareDispatcher {
    fn eq(&self, other: &Self) -> bool {
        // The scratch buffer is internal state, not configuration.
        self.inner == other.inner && self.k == other.k && self.loads == other.loads
    }
}

impl LoadAwareDispatcher {
    /// Creates a dispatcher drawing a `pool`-wide consistent-hash candidate
    /// pool (with `vnodes` virtual nodes per server) and selecting the `k`
    /// least-loaded candidates from it.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty, `vnodes`/`pool`/`k` is zero, or `pool`
    /// (after capping at the server count) exceeds [`MAX_CANDIDATES`].
    pub fn new(servers: Vec<Ipv6Addr>, vnodes: usize, pool: usize, k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        let inner = ConsistentHashDispatcher::new(servers, vnodes, pool);
        let k_config = k;
        let k = k.min(inner.fanout());
        let loads = inner
            .backends()
            .iter()
            .map(|&addr| (addr, Ewma::new()))
            .collect();
        LoadAwareDispatcher {
            inner,
            k,
            k_config,
            loads,
            scratch: CandidateList::new(),
        }
    }

    /// The pool width (number of consistent-hash candidates re-ranked per
    /// flow).
    pub fn pool(&self) -> usize {
        self.inner.fanout()
    }

    /// The current smoothed load estimate for `server` (0 if never
    /// observed).
    pub fn load_of(&self, server: &Ipv6Addr) -> f64 {
        self.loads
            .iter()
            .find(|(addr, _)| addr == server)
            .and_then(|(_, ewma)| ewma.value())
            .unwrap_or(0.0)
    }
}

impl Dispatcher for LoadAwareDispatcher {
    fn candidates_into(&mut self, flow: &FlowKey, rng: &mut dyn RngCore, out: &mut CandidateList) {
        self.inner.candidates_into(flow, rng, &mut self.scratch);
        out.clear();
        // Selection sort of the k smallest: the pool is at most
        // MAX_CANDIDATES wide, so two nested linear scans beat anything
        // requiring scratch allocations.
        for _ in 0..self.k {
            let mut best: Option<(usize, f64)> = None;
            for (i, addr) in self.scratch.as_slice().iter().enumerate() {
                if out.contains(addr) {
                    continue;
                }
                let load = self.load_of(addr);
                if best.is_none_or(|(_, b)| load < b) {
                    best = Some((i, load));
                }
            }
            let (i, _) = best.expect("pool is at least as wide as k"); // srlb-lint: allow(panic-hygiene) -- loop invariant: out.len() < k ≤ scratch.len(), so an unpicked candidate always exists
            out.push(self.scratch.as_slice()[i]);
        }
    }

    fn fanout(&self) -> usize {
        self.k
    }

    fn name(&self) -> String {
        format!("load-aware-{}of{}", self.k, self.inner.fanout())
    }

    fn backends(&self) -> &[Ipv6Addr] {
        self.inner.backends()
    }

    fn rebuild(&mut self, servers: Vec<Ipv6Addr>) {
        // Membership change invalidates the smoothed loads (server indices,
        // capacities and queue states all shift), so start estimation afresh
        // — identical to a newly constructed dispatcher.
        self.inner.rebuild(servers);
        self.k = self.k_config.min(self.inner.fanout());
        self.loads = self
            .inner
            .backends()
            .iter()
            .map(|&addr| (addr, Ewma::new()))
            .collect();
    }

    fn observe_load(&mut self, server: Ipv6Addr, load: f64, now_s: f64) {
        if let Some((_, ewma)) = self.loads.iter_mut().find(|(addr, _)| *addr == server) {
            ewma.observe(now_s, load);
        }
    }
}

/// Serialisable dispatcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatcherConfig {
    /// `k` servers chosen uniformly at random.
    Random {
        /// Number of candidates per flow.
        k: usize,
    },
    /// Consistent hashing with virtual nodes.
    ConsistentHash {
        /// Virtual nodes per server.
        vnodes: usize,
        /// Number of candidates per flow.
        k: usize,
    },
    /// Maglev lookup table.
    Maglev {
        /// Lookup table size (use a prime).
        table_size: usize,
        /// Number of candidates per flow.
        k: usize,
    },
    /// Consistent-hash pool re-ranked by per-server load hints.
    LoadAware {
        /// Virtual nodes per server on the inner ring.
        vnodes: usize,
        /// Width of the candidate pool drawn from the ring.
        pool: usize,
        /// Number of (least-loaded) candidates selected from the pool.
        k: usize,
    },
}

impl DispatcherConfig {
    /// The paper's default: two random candidates.
    pub fn paper_default() -> Self {
        DispatcherConfig::Random { k: 2 }
    }

    /// Builds the dispatcher over the given server set.
    pub fn build(&self, servers: Vec<Ipv6Addr>) -> Box<dyn Dispatcher> {
        match *self {
            DispatcherConfig::Random { k } => Box::new(RandomDispatcher::new(servers, k)),
            DispatcherConfig::ConsistentHash { vnodes, k } => {
                Box::new(ConsistentHashDispatcher::new(servers, vnodes, k))
            }
            DispatcherConfig::Maglev { table_size, k } => {
                Box::new(MaglevDispatcher::new(servers, table_size, k))
            }
            DispatcherConfig::LoadAware { vnodes, pool, k } => {
                Box::new(LoadAwareDispatcher::new(servers, vnodes, pool, k))
            }
        }
    }

    /// Number of candidates per flow.
    pub fn fanout(&self) -> usize {
        match *self {
            DispatcherConfig::Random { k }
            | DispatcherConfig::ConsistentHash { k, .. }
            | DispatcherConfig::Maglev { k, .. }
            | DispatcherConfig::LoadAware { k, .. } => k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlb_net::{AddressPlan, Protocol, ServerId};
    use srlb_sim::SimRng;

    fn servers(n: u32) -> Vec<Ipv6Addr> {
        let plan = AddressPlan::default();
        (0..n).map(|i| plan.server_addr(ServerId(i))).collect()
    }

    fn flow(port: u16) -> FlowKey {
        let plan = AddressPlan::default();
        FlowKey::new(plan.client_addr(0), plan.vip(0), port, 80, Protocol::Tcp)
    }

    #[test]
    fn bounded_draw_is_in_range_and_unbiased_at_tiny_n() {
        let mut rng = SimRng::new(11);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[bounded(&mut rng, 3) as usize] += 1;
        }
        for c in counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "bounded(3) should be uniform, got {counts:?}"
            );
        }
    }

    #[test]
    fn candidate_list_push_clear_contains() {
        let mut list = CandidateList::new();
        assert!(list.is_empty());
        let a = flow(1).client();
        list.push(a);
        assert_eq!(list.len(), 1);
        assert!(list.contains(&a));
        assert_eq!(&*list, &[a][..]);
        list.clear();
        assert!(list.is_empty());
        assert_eq!(CandidateList::default().len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn candidate_list_overflow_panics() {
        let mut list = CandidateList::new();
        for s in servers(MAX_SEGMENTS as u32 + 1) {
            list.push(s);
        }
    }

    #[test]
    fn candidates_into_reuses_the_buffer() {
        let mut d = RandomDispatcher::power_of_two(servers(12));
        let mut rng = SimRng::new(1);
        let mut out = CandidateList::new();
        for port in 0..100 {
            d.candidates_into(&flow(port), &mut rng, &mut out);
            assert_eq!(out.len(), 2);
            assert_ne!(out.as_slice()[0], out.as_slice()[1]);
        }
    }

    #[test]
    fn random_dispatcher_returns_distinct_candidates() {
        let mut d = RandomDispatcher::power_of_two(servers(12));
        let mut rng = SimRng::new(1);
        for port in 0..1000 {
            let c = d.candidates(&flow(port), &mut rng);
            assert_eq!(c.len(), 2);
            assert_ne!(c[0], c[1], "candidates must be distinct");
        }
        assert_eq!(d.fanout(), 2);
        assert_eq!(d.name(), "random-2");
    }

    #[test]
    fn random_dispatcher_is_roughly_uniform() {
        let all = servers(12);
        let mut d = RandomDispatcher::single_random(all.clone());
        let mut rng = SimRng::new(7);
        let mut counts = std::collections::HashMap::new();
        let trials = 24_000;
        for port in 0..trials {
            let c = d.candidates(&flow(port as u16), &mut rng);
            *counts.entry(c[0]).or_insert(0usize) += 1;
        }
        for s in &all {
            let count = counts.get(s).copied().unwrap_or(0);
            let expected = trials / 12;
            assert!(
                (count as f64 - expected as f64).abs() < expected as f64 * 0.15,
                "server {s} got {count}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn random_dispatcher_k_capped_at_server_count() {
        let mut d = RandomDispatcher::new(servers(3), 10);
        let mut rng = SimRng::new(1);
        let c = d.candidates(&flow(1), &mut rng);
        assert_eq!(c.len(), 3);
        let unique: std::collections::HashSet<_> = c.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    #[should_panic(expected = "candidates fit")]
    fn random_dispatcher_rejects_oversized_fanout() {
        RandomDispatcher::new(servers(16), MAX_CANDIDATES + 1);
    }

    #[test]
    fn consistent_hash_is_deterministic_per_flow() {
        let mut d = ConsistentHashDispatcher::new(servers(12), 100, 2);
        let mut rng = SimRng::new(1);
        let a = d.candidates(&flow(42), &mut rng);
        let b = d.candidates(&flow(42), &mut rng);
        assert_eq!(a, b, "same flow must map to the same candidates");
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1]);
        assert_eq!(d.ring_size(), 1200);
        assert!(d.name().starts_with("consistent-hash"));
    }

    #[test]
    fn consistent_hash_spreads_flows() {
        let mut d = ConsistentHashDispatcher::new(servers(12), 512, 1);
        let mut rng = SimRng::new(1);
        let mut counts = std::collections::HashMap::new();
        for port in 0..12_000u32 {
            let f = FlowKey::new(
                AddressPlan::default().client_addr(port),
                AddressPlan::default().vip(0),
                (port % 60_000) as u16,
                80,
                Protocol::Tcp,
            );
            let c = d.candidates(&f, &mut rng);
            *counts.entry(c[0]).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 12, "every server should receive some flows");
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(
            *max < min * 4,
            "consistent hashing with many virtual nodes should be reasonably balanced \
             (min {min}, max {max})"
        );
    }

    #[test]
    fn maglev_table_is_nearly_uniform() {
        let d = MaglevDispatcher::new(servers(12), 2039, 2);
        assert_eq!(d.table_size(), 2039);
        let ownership = d.ownership();
        assert_eq!(ownership.len(), 12);
        let max = ownership.values().max().unwrap();
        let min = ownership.values().min().unwrap();
        // Maglev guarantees near-perfect balance of slot ownership.
        assert!(
            max - min <= 2039 / 12 / 5 + 2,
            "maglev ownership should be near-uniform (min {min}, max {max})"
        );
    }

    #[test]
    fn maglev_is_deterministic_and_distinct() {
        let mut d = MaglevDispatcher::new(servers(12), 251, 2);
        let mut rng = SimRng::new(1);
        let a = d.candidates(&flow(7), &mut rng);
        let b = d.candidates(&flow(7), &mut rng);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1]);
        assert_eq!(d.fanout(), 2);
        assert!(d.name().starts_with("maglev"));
    }

    #[test]
    fn config_builds_each_kind() {
        let s = servers(4);
        assert_eq!(DispatcherConfig::paper_default().fanout(), 2);
        let mut rng = SimRng::new(1);
        for config in [
            DispatcherConfig::Random { k: 2 },
            DispatcherConfig::ConsistentHash { vnodes: 16, k: 2 },
            DispatcherConfig::Maglev {
                table_size: 53,
                k: 2,
            },
            DispatcherConfig::LoadAware {
                vnodes: 16,
                pool: 3,
                k: 2,
            },
        ] {
            let mut d = config.build(s.clone());
            let c = d.candidates(&flow(3), &mut rng);
            assert_eq!(c.len(), 2);
            assert_eq!(config.fanout(), 2);
        }
    }

    #[test]
    fn rebuild_matches_fresh_construction() {
        let before = servers(8);
        let after = servers(6);
        let mut rng = SimRng::new(3);

        let mut ch = ConsistentHashDispatcher::new(before.clone(), 64, 2);
        ch.rebuild(after.clone());
        let mut fresh_ch = ConsistentHashDispatcher::new(after.clone(), 64, 2);
        assert_eq!(ch, fresh_ch);
        assert_eq!(ch.backends(), &after[..]);
        assert_eq!(
            ch.candidates(&flow(9), &mut rng),
            fresh_ch.candidates(&flow(9), &mut rng)
        );

        let mut maglev = MaglevDispatcher::new(before.clone(), 251, 2);
        maglev.rebuild(after.clone());
        assert_eq!(maglev, MaglevDispatcher::new(after.clone(), 251, 2));
        assert_eq!(maglev.backends(), &after[..]);

        let mut random = RandomDispatcher::new(before, 2);
        random.rebuild(after.clone());
        assert_eq!(random, RandomDispatcher::new(after, 2));
    }

    #[test]
    fn rebuild_restores_configured_fanout_after_capping() {
        // Configured k = 4 but only 2 servers: effective fanout 2; growing
        // the cluster back restores k = 4.
        let mut d = RandomDispatcher::new(servers(2), 4);
        assert_eq!(d.fanout(), 2);
        d.rebuild(servers(10));
        assert_eq!(d.fanout(), 4);
        let mut ch = ConsistentHashDispatcher::new(servers(2), 16, 4);
        assert_eq!(ch.fanout(), 2);
        ch.rebuild(servers(10));
        assert_eq!(ch.fanout(), 4);
        let mut m = MaglevDispatcher::new(servers(2), 251, 4);
        assert_eq!(m.fanout(), 2);
        m.rebuild(servers(10));
        assert_eq!(m.fanout(), 4);
        assert_eq!(m.table_size(), 251, "rebuild keeps the table size");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn rebuild_with_empty_set_panics() {
        let mut d = RandomDispatcher::new(servers(2), 2);
        d.rebuild(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_server_set_panics() {
        RandomDispatcher::new(vec![], 2);
    }

    #[test]
    fn load_aware_defaults_to_ring_order_without_observations() {
        let s = servers(12);
        let mut aware = LoadAwareDispatcher::new(s.clone(), 64, 4, 2);
        let mut pool = ConsistentHashDispatcher::new(s, 64, 4);
        let mut rng = SimRng::new(1);
        for port in 0..200 {
            let chosen = aware.candidates(&flow(port), &mut rng);
            let ring = pool.candidates(&flow(port), &mut rng);
            assert_eq!(
                chosen,
                ring[..2].to_vec(),
                "unobserved loads must preserve ring order"
            );
        }
        assert_eq!(aware.fanout(), 2);
        assert_eq!(aware.pool(), 4);
        assert_eq!(aware.name(), "load-aware-2of4");
    }

    #[test]
    fn load_aware_steers_away_from_loaded_servers() {
        let s = servers(12);
        let mut aware = LoadAwareDispatcher::new(s.clone(), 64, 4, 2);
        let mut pool = ConsistentHashDispatcher::new(s, 64, 4);
        let mut rng = SimRng::new(1);

        let f = flow(42);
        let ring = pool.candidates(&f, &mut rng);
        // Mark the first two ring candidates heavily loaded; the tail two
        // (still load 0) must now win, in ring order.
        aware.observe_load(ring[0], 10.0, 0.0);
        aware.observe_load(ring[1], 10.0, 0.0);
        assert_eq!(aware.candidates(&f, &mut rng), vec![ring[2], ring[3]]);
        assert!(aware.load_of(&ring[0]) > 9.0);

        // The least-loaded of the loaded pair still outranks the other.
        aware.observe_load(ring[2], 20.0, 1.0);
        aware.observe_load(ring[3], 20.0, 1.0);
        assert_eq!(aware.candidates(&f, &mut rng)[0], ring[0]);
    }

    #[test]
    fn load_aware_rebuild_matches_fresh_construction_and_resets_loads() {
        let before = servers(8);
        let after = servers(6);
        let mut d = LoadAwareDispatcher::new(before, 64, 4, 2);
        d.observe_load(after[0], 5.0, 0.0);
        d.rebuild(after.clone());
        assert_eq!(d, LoadAwareDispatcher::new(after.clone(), 64, 4, 2));
        assert_eq!(d.load_of(&after[0]), 0.0, "rebuild resets load estimates");
        assert_eq!(d.backends(), &after[..]);
    }

    #[test]
    fn load_aware_pool_and_k_are_capped_at_server_count() {
        let mut d = LoadAwareDispatcher::new(servers(3), 16, 6, 4);
        assert_eq!(d.pool(), 3);
        assert_eq!(d.fanout(), 3);
        d.rebuild(servers(10));
        assert_eq!(d.pool(), 6);
        assert_eq!(d.fanout(), 4);
    }

    #[test]
    fn observe_load_is_a_no_op_for_oblivious_dispatchers() {
        let s = servers(4);
        let mut rng = SimRng::new(2);
        let mut plain = RandomDispatcher::power_of_two(s.clone());
        let mut observed = RandomDispatcher::power_of_two(s.clone());
        observed.observe_load(s[0], 100.0, 0.0);
        assert_eq!(
            plain.candidates(&flow(5), &mut rng.clone()),
            observed.candidates(&flow(5), &mut rng)
        );
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        RandomDispatcher::new(servers(2), 0);
    }
}
