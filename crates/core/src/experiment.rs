//! High-level experiment configurations matching the paper's evaluation.
//!
//! An [`ExperimentConfig`] names a *workload* (Poisson at a normalised rate
//! ρ, or the synthetic Wikipedia replay) and a *policy* (the RR baseline,
//! a static `SRc`, or `SRdyn`), runs it on the simulated testbed, and
//! returns an [`ExperimentResult`] carrying every statistic the paper's
//! figures report.

use serde::{Deserialize, Serialize};

use srlb_metrics::{Cdf, RequestClass, ResponseTimeCollector, Summary};
use srlb_server::{PolicyConfig, ServerStats};
use srlb_sim::SimDuration;
use srlb_workload::{PoissonWorkload, Request, WikipediaWorkload};

use crate::calibration::analytic_lambda0;
use crate::dispatch::DispatcherConfig;
use crate::lb_node::LbStats;
use crate::testbed::{Testbed, TestbedConfig};
use crate::CoreError;

/// The load-balancing policy under test, named as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// `RR`: each query is assigned to one random server, no Service
    /// Hunting.
    RoundRobin,
    /// `SRc`: Service Hunting over two random candidates with the static
    /// acceptance threshold `c`.
    Static {
        /// The busy-thread threshold `c`.
        threshold: usize,
    },
    /// `SRdyn`: Service Hunting with the dynamic threshold policy.
    Dynamic,
    /// Service Hunting with an explicit candidate count and policy (used by
    /// the ablation benches).
    Custom {
        /// Number of candidates in the SR list.
        candidates: usize,
        /// Per-server acceptance policy.
        policy: PolicyConfig,
    },
}

impl PolicyKind {
    /// The display name used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::RoundRobin => "RR".to_string(),
            PolicyKind::Static { threshold } => format!("SR{threshold}"),
            PolicyKind::Dynamic => "SRdyn".to_string(),
            PolicyKind::Custom { candidates, policy } => {
                format!("custom-k{}-{}", candidates, policy.name())
            }
        }
    }

    /// The dispatcher this policy requires.
    pub fn dispatcher(&self) -> DispatcherConfig {
        match self {
            PolicyKind::RoundRobin => DispatcherConfig::Random { k: 1 },
            PolicyKind::Static { .. } | PolicyKind::Dynamic => DispatcherConfig::Random { k: 2 },
            PolicyKind::Custom { candidates, .. } => DispatcherConfig::Random { k: *candidates },
        }
    }

    /// The per-server acceptance policy this policy requires.
    pub fn acceptance_policy(&self) -> PolicyConfig {
        match self {
            // With a single candidate the policy is never consulted.
            PolicyKind::RoundRobin => PolicyConfig::AlwaysAccept,
            PolicyKind::Static { threshold } => PolicyConfig::Static {
                threshold: *threshold,
            },
            PolicyKind::Dynamic => PolicyConfig::paper_dynamic(),
            PolicyKind::Custom { policy, .. } => *policy,
        }
    }
}

/// The workload driven through the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The Poisson workload of Section V.
    Poisson {
        /// Normalised request rate ρ = λ/λ₀.
        rho: f64,
        /// Maximum sustainable rate λ₀ in queries per second; `None` uses
        /// the analytic capacity of the configured cluster.
        lambda0: Option<f64>,
        /// Number of queries (the paper uses 20 000).
        queries: usize,
        /// Mean service time in milliseconds (the paper uses 100 ms).
        mean_service_ms: f64,
    },
    /// The synthetic Wikipedia replay of Section VI.
    Wikipedia {
        /// Trace duration in hours (the paper replays 24 hours).
        hours: f64,
        /// Fraction of the peak load to replay (the paper uses 50%).
        load_fraction: f64,
    },
    /// An explicit, pre-generated trace.
    Trace {
        /// The requests to replay.
        requests: Vec<Request>,
    },
}

/// A complete experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The workload.
    pub workload: WorkloadKind,
    /// The policy under test.
    pub policy: PolicyKind,
    /// Number of servers (the paper uses 12).
    pub servers: usize,
    /// Worker threads per server (the paper uses 32).
    pub workers: usize,
    /// CPU cores per server (the paper's VMs have 2).
    pub cores: usize,
    /// TCP backlog per server (the paper uses 128).
    pub backlog: usize,
    /// Whether servers record load samples (needed for Figure 4).
    pub record_load: bool,
    /// Random seed (workload generation and candidate selection).
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's Poisson experiment at normalised rate `rho` with the
    /// given policy: 12 servers × 32 workers, 20 000 queries, exp(100 ms)
    /// service.
    pub fn poisson_paper(rho: f64, policy: PolicyKind) -> Self {
        ExperimentConfig {
            workload: WorkloadKind::Poisson {
                rho,
                lambda0: None,
                queries: 20_000,
                mean_service_ms: 100.0,
            },
            policy,
            servers: 12,
            workers: 32,
            cores: 2,
            backlog: 128,
            record_load: false,
            seed: 1,
        }
    }

    /// A scaled-down Poisson experiment (1 000 queries) for quick runs,
    /// examples and benches.
    pub fn poisson_quick(rho: f64, policy: PolicyKind) -> Self {
        let mut config = Self::poisson_paper(rho, policy);
        if let WorkloadKind::Poisson { queries, .. } = &mut config.workload {
            *queries = 1_000;
        }
        config
    }

    /// The paper's Wikipedia replay (24 hours at 50% of peak) with the given
    /// policy.
    pub fn wikipedia_paper(policy: PolicyKind) -> Self {
        ExperimentConfig {
            workload: WorkloadKind::Wikipedia {
                hours: 24.0,
                load_fraction: 0.5,
            },
            policy,
            servers: 12,
            workers: 32,
            cores: 2,
            backlog: 128,
            record_load: false,
            seed: 1,
        }
    }

    /// Overrides the number of Poisson queries (builder style); no effect on
    /// other workloads.
    pub fn with_queries(mut self, n: usize) -> Self {
        if let WorkloadKind::Poisson { queries, .. } = &mut self.workload {
            *queries = n;
        }
        self
    }

    /// Overrides the random seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the cluster size (builder style).
    pub fn with_servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Overrides the Wikipedia trace duration in hours (builder style); no
    /// effect on other workloads.
    pub fn with_hours(mut self, h: f64) -> Self {
        if let WorkloadKind::Wikipedia { hours, .. } = &mut self.workload {
            *hours = h;
        }
        self
    }

    /// Enables per-server load recording (builder style).
    pub fn with_load_recording(mut self) -> Self {
        self.record_load = true;
        self
    }

    /// The λ₀ used by this configuration's Poisson workload (explicit value
    /// or the analytic cluster capacity).
    pub fn effective_lambda0(&self) -> Option<f64> {
        match &self.workload {
            WorkloadKind::Poisson {
                lambda0,
                mean_service_ms,
                ..
            } => {
                Some(lambda0.unwrap_or_else(|| {
                    analytic_lambda0(self.servers, self.cores, *mean_service_ms)
                }))
            }
            _ => None,
        }
    }

    /// Generates the request trace for this configuration.
    pub fn generate_requests(&self) -> Vec<Request> {
        match &self.workload {
            WorkloadKind::Poisson {
                rho,
                queries,
                mean_service_ms,
                ..
            } => {
                let lambda0 = self
                    .effective_lambda0()
                    .expect("poisson workload has a lambda0");
                PoissonWorkload::paper(*rho, lambda0)
                    .with_queries(*queries)
                    .with_service(srlb_workload::ServiceTime::Exponential {
                        mean_ms: *mean_service_ms,
                    })
                    .generate(self.seed)
            }
            WorkloadKind::Wikipedia {
                hours,
                load_fraction,
            } => WikipediaWorkload::paper()
                .with_duration_hours(*hours)
                .with_load_fraction(*load_fraction)
                .generate(self.seed),
            WorkloadKind::Trace { requests } => requests.clone(),
        }
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the derived testbed
    /// configuration is invalid (e.g. more candidates than servers).
    pub fn run(&self) -> Result<ExperimentResult, CoreError> {
        let requests = self.generate_requests();
        let testbed_config = TestbedConfig {
            servers: self.servers,
            workers: self.workers,
            cores: self.cores,
            backlog: self.backlog,
            policy: self.policy.acceptance_policy(),
            dispatcher: self.policy.dispatcher(),
            link_latency: SimDuration::from_micros(50),
            record_load: self.record_load,
            seed: self.seed,
        };
        let testbed = Testbed::new(testbed_config)?;
        let outcome = testbed.run(requests);

        let summary = outcome.collector.summary(None);
        Ok(ExperimentResult {
            label: self.policy.label(),
            rho: match &self.workload {
                WorkloadKind::Poisson { rho, .. } => Some(*rho),
                _ => None,
            },
            sent: outcome.collector.len(),
            completed: outcome.collector.completed_count(),
            resets: outcome.collector.reset_count(),
            response_times: summary,
            collector: outcome.collector,
            server_stats: outcome.server_stats,
            load_series: outcome.load_series,
            acceptance_ratios: outcome.acceptance_ratios,
            lb_stats: outcome.lb_stats,
            duration_seconds: outcome.duration_seconds,
        })
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Policy label (`"RR"`, `"SR4"`, `"SRdyn"`, …).
    pub label: String,
    /// Normalised rate ρ for Poisson runs.
    pub rho: Option<f64>,
    /// Number of requests sent.
    pub sent: usize,
    /// Number of requests completed.
    pub completed: usize,
    /// Number of requests reset.
    pub resets: usize,
    /// Summary over completed response times (milliseconds).
    pub response_times: Summary,
    /// The full per-request collection.
    pub collector: ResponseTimeCollector,
    /// Per-server counters.
    pub server_stats: Vec<ServerStats>,
    /// Per-server `(time, busy)` load series (when recorded).
    pub load_series: Vec<Vec<(f64, usize)>>,
    /// Per-server first-candidate acceptance ratios.
    pub acceptance_ratios: Vec<f64>,
    /// Load-balancer counters.
    pub lb_stats: LbStats,
    /// Simulated duration in seconds.
    pub duration_seconds: f64,
}

impl ExperimentResult {
    /// Mean completed response time in seconds (how Figure 2 reports it).
    pub fn mean_response_seconds(&self) -> f64 {
        self.response_times.mean() / 1e3
    }

    /// CDF of completed response times in seconds, optionally filtered by
    /// request class (Figures 3, 5 and 8).
    pub fn cdf_seconds(&self, class: Option<RequestClass>) -> Cdf {
        Cdf::from_samples(
            self.collector
                .response_times_ms(class)
                .into_iter()
                .map(|ms| ms / 1e3),
        )
    }

    /// Fraction of requests that were reset.
    pub fn reset_fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.resets as f64 / self.sent as f64
        }
    }

    /// Per-server completed-request counts.
    pub fn per_server_completed(&self) -> Vec<u64> {
        self.server_stats.iter().map(|s| s.completed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kind_labels_and_mappings() {
        assert_eq!(PolicyKind::RoundRobin.label(), "RR");
        assert_eq!(PolicyKind::Static { threshold: 4 }.label(), "SR4");
        assert_eq!(PolicyKind::Dynamic.label(), "SRdyn");
        assert_eq!(
            PolicyKind::RoundRobin.dispatcher(),
            DispatcherConfig::Random { k: 1 }
        );
        assert_eq!(
            PolicyKind::Static { threshold: 8 }.dispatcher(),
            DispatcherConfig::Random { k: 2 }
        );
        assert_eq!(
            PolicyKind::Static { threshold: 8 }.acceptance_policy(),
            PolicyConfig::Static { threshold: 8 }
        );
        assert_eq!(
            PolicyKind::Dynamic.acceptance_policy(),
            PolicyConfig::paper_dynamic()
        );
        let custom = PolicyKind::Custom {
            candidates: 3,
            policy: PolicyConfig::Static { threshold: 2 },
        };
        assert_eq!(custom.dispatcher(), DispatcherConfig::Random { k: 3 });
        assert!(custom.label().contains("k3"));
    }

    #[test]
    fn effective_lambda0_defaults_to_analytic_capacity() {
        let config = ExperimentConfig::poisson_paper(0.5, PolicyKind::RoundRobin);
        // 12 servers x 2 cores / 0.1 s = 240 queries/s.
        assert!((config.effective_lambda0().unwrap() - 240.0).abs() < 1e-9);
        let wiki = ExperimentConfig::wikipedia_paper(PolicyKind::RoundRobin);
        assert_eq!(wiki.effective_lambda0(), None);
    }

    #[test]
    fn quick_experiment_runs_and_reports() {
        let result = ExperimentConfig::poisson_quick(0.5, PolicyKind::Static { threshold: 4 })
            .with_queries(400)
            .with_seed(3)
            .run()
            .unwrap();
        assert_eq!(result.label, "SR4");
        assert_eq!(result.rho, Some(0.5));
        assert_eq!(result.sent, 400);
        assert!(result.completed > 0);
        assert!(result.mean_response_seconds() > 0.0);
        assert!(result.reset_fraction() < 0.5);
        assert_eq!(result.per_server_completed().len(), 12);
        let cdf = result.cdf_seconds(None);
        assert_eq!(cdf.count(), result.completed);
    }

    #[test]
    fn trace_workload_replays_explicit_requests() {
        let requests = ExperimentConfig::poisson_quick(0.3, PolicyKind::RoundRobin)
            .with_queries(100)
            .generate_requests();
        let config = ExperimentConfig {
            workload: WorkloadKind::Trace { requests },
            policy: PolicyKind::RoundRobin,
            servers: 4,
            workers: 8,
            cores: 2,
            backlog: 32,
            record_load: false,
            seed: 5,
        };
        let result = config.run().unwrap();
        assert_eq!(result.sent, 100);
        assert_eq!(result.label, "RR");
    }

    #[test]
    fn invalid_custom_policy_is_rejected() {
        let config = ExperimentConfig::poisson_quick(
            0.5,
            PolicyKind::Custom {
                candidates: 50,
                policy: PolicyConfig::Static { threshold: 2 },
            },
        )
        .with_queries(10);
        assert!(config.run().is_err());
    }

    #[test]
    fn builders_override_fields() {
        let config = ExperimentConfig::wikipedia_paper(PolicyKind::Dynamic)
            .with_hours(0.5)
            .with_servers(6)
            .with_seed(9)
            .with_load_recording();
        assert_eq!(config.servers, 6);
        assert_eq!(config.seed, 9);
        assert!(config.record_load);
        match config.workload {
            WorkloadKind::Wikipedia { hours, .. } => assert_eq!(hours, 0.5),
            _ => panic!("expected wikipedia workload"),
        }
    }
}
