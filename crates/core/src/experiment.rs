//! High-level experiment configurations matching the paper's evaluation
//! (compatibility layer).
//!
//! [`ExperimentConfig`] predates the unified [`ExperimentSpec`] and
//! survives as a thin shim: it converts itself to a spec
//! ([`ExperimentConfig::to_spec`]) and runs through the one
//! [`Runner`](crate::runner::Runner).  New code should build
//! [`ExperimentSpec`]s directly.

use serde::{Deserialize, Serialize};

use srlb_metrics::{Cdf, RequestClass, ResponseTimeCollector, Summary};
use srlb_server::ServerStats;
use srlb_workload::Request;

use crate::lb_node::LbStats;
use crate::runner::{RunOutcome, Runner};
use crate::spec::{ClusterSpec, ExperimentSpec, FaultPlan, WorkloadSpec};
use crate::CoreError;

pub use crate::spec::PolicyKind;

/// The workload driven through the cluster (legacy shape; the spec's
/// [`WorkloadSpec`] adds explicit-rate Poisson).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The Poisson workload of Section V.
    Poisson {
        /// Normalised request rate ρ = λ/λ₀.
        rho: f64,
        /// Maximum sustainable rate λ₀ in queries per second; `None` uses
        /// the analytic capacity of the configured cluster.
        lambda0: Option<f64>,
        /// Number of queries (the paper uses 20 000).
        queries: usize,
        /// Mean service time in milliseconds (the paper uses 100 ms).
        mean_service_ms: f64,
    },
    /// The synthetic Wikipedia replay of Section VI.
    Wikipedia {
        /// Trace duration in hours (the paper replays 24 hours).
        hours: f64,
        /// Fraction of the peak load to replay (the paper uses 50%).
        load_fraction: f64,
    },
    /// An explicit, pre-generated trace.
    Trace {
        /// The requests to replay.
        requests: Vec<Request>,
    },
}

impl WorkloadKind {
    /// The spec-level workload this legacy shape maps to.
    pub fn to_spec(&self) -> WorkloadSpec {
        match self {
            WorkloadKind::Poisson {
                rho,
                lambda0,
                queries,
                mean_service_ms,
            } => WorkloadSpec::Poisson {
                rho: *rho,
                lambda0: *lambda0,
                queries: *queries,
                mean_service_ms: *mean_service_ms,
            },
            WorkloadKind::Wikipedia {
                hours,
                load_fraction,
            } => WorkloadSpec::Wikipedia {
                hours: *hours,
                load_fraction: *load_fraction,
            },
            WorkloadKind::Trace { requests } => WorkloadSpec::Trace {
                requests: requests.clone(),
            },
        }
    }
}

/// A complete experiment configuration (legacy shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The workload.
    pub workload: WorkloadKind,
    /// The policy under test.
    pub policy: PolicyKind,
    /// Number of servers (the paper uses 12).
    pub servers: usize,
    /// Worker threads per server (the paper uses 32).
    pub workers: usize,
    /// CPU cores per server (the paper's VMs have 2).
    pub cores: usize,
    /// TCP backlog per server (the paper uses 128).
    pub backlog: usize,
    /// Whether servers record load samples (needed for Figure 4).
    pub record_load: bool,
    /// Random seed (workload generation and candidate selection).
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's Poisson experiment at normalised rate `rho` with the
    /// given policy: 12 servers × 32 workers, 20 000 queries, exp(100 ms)
    /// service.
    pub fn poisson_paper(rho: f64, policy: PolicyKind) -> Self {
        ExperimentConfig {
            workload: WorkloadKind::Poisson {
                rho,
                lambda0: None,
                queries: 20_000,
                mean_service_ms: 100.0,
            },
            policy,
            servers: 12,
            workers: 32,
            cores: 2,
            backlog: 128,
            record_load: false,
            seed: 1,
        }
    }

    /// A scaled-down Poisson experiment (1 000 queries) for quick runs,
    /// examples and benches.
    pub fn poisson_quick(rho: f64, policy: PolicyKind) -> Self {
        let mut config = Self::poisson_paper(rho, policy);
        if let WorkloadKind::Poisson { queries, .. } = &mut config.workload {
            *queries = 1_000;
        }
        config
    }

    /// The paper's Wikipedia replay (24 hours at 50% of peak) with the given
    /// policy.
    pub fn wikipedia_paper(policy: PolicyKind) -> Self {
        ExperimentConfig {
            workload: WorkloadKind::Wikipedia {
                hours: 24.0,
                load_fraction: 0.5,
            },
            policy,
            servers: 12,
            workers: 32,
            cores: 2,
            backlog: 128,
            record_load: false,
            seed: 1,
        }
    }

    /// Overrides the number of Poisson queries (builder style); no effect on
    /// other workloads.
    pub fn with_queries(mut self, n: usize) -> Self {
        if let WorkloadKind::Poisson { queries, .. } = &mut self.workload {
            *queries = n;
        }
        self
    }

    /// Overrides the random seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the cluster size (builder style).
    pub fn with_servers(mut self, servers: usize) -> Self {
        self.servers = servers;
        self
    }

    /// Overrides the Wikipedia trace duration in hours (builder style); no
    /// effect on other workloads.
    pub fn with_hours(mut self, h: f64) -> Self {
        if let WorkloadKind::Wikipedia { hours, .. } = &mut self.workload {
            *hours = h;
        }
        self
    }

    /// Enables per-server load recording (builder style).
    pub fn with_load_recording(mut self) -> Self {
        self.record_load = true;
        self
    }

    /// The λ₀ used by this configuration's Poisson workload (explicit value
    /// or the analytic cluster capacity).
    pub fn effective_lambda0(&self) -> Option<f64> {
        match &self.workload {
            WorkloadKind::Poisson {
                lambda0,
                mean_service_ms,
                ..
            } => Some(lambda0.unwrap_or_else(|| {
                crate::calibration::analytic_lambda0(self.servers, self.cores, *mean_service_ms)
            })),
            _ => None,
        }
    }

    /// Generates the request trace for this configuration (eager
    /// convenience; the runner itself streams).
    pub fn generate_requests(&self) -> Vec<Request> {
        // An explicit trace is already materialised: one copy, not a
        // spec-level clone followed by a stream drain.
        if let WorkloadKind::Trace { requests } = &self.workload {
            return requests.clone();
        }
        let spec = self.to_spec();
        let mut stream = spec.workload.stream(spec.seed, &spec.cluster);
        srlb_workload::stream::collect(stream.as_mut())
    }

    /// The unified [`ExperimentSpec`] this configuration denotes: a static
    /// cluster (no scenario events) on the paper's uniform topology.
    pub fn to_spec(&self) -> ExperimentSpec {
        ExperimentSpec {
            name: self.policy.label(),
            seed: self.seed,
            workload: self.workload.to_spec(),
            cluster: ClusterSpec {
                initial_servers: self.servers,
                max_servers: self.servers,
                workers: self.workers,
                cores: self.cores,
                backlog: self.backlog,
                capacity_overrides: Vec::new(),
                vips: 1,
                lb_count: 1,
                flow_table: crate::spec::FlowTableSpec::default(),
                recover_flows: false,
                record_load: self.record_load,
            },
            topology: srlb_sim::TopologyModel::paper(),
            scenario: Vec::new(),
            policy: self.policy,
            request_delay_ms: 0.0,
            faults: FaultPlan::default(),
        }
    }

    /// Runs the experiment through the unified [`Runner`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the derived spec is invalid
    /// (e.g. more candidates than servers).
    pub fn run(&self) -> Result<ExperimentResult, CoreError> {
        let outcome = Runner::new(self.to_spec())?.run();
        Ok(ExperimentResult::from_outcome(
            outcome,
            match &self.workload {
                WorkloadKind::Poisson { rho, .. } => Some(*rho),
                _ => None,
            },
        ))
    }
}

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Policy label (`"RR"`, `"SR4"`, `"SRdyn"`, …).
    pub label: String,
    /// Normalised rate ρ for Poisson runs.
    pub rho: Option<f64>,
    /// Number of requests sent.
    pub sent: usize,
    /// Number of requests completed.
    pub completed: usize,
    /// Number of requests reset.
    pub resets: usize,
    /// Summary over completed response times (milliseconds).
    pub response_times: Summary,
    /// The full per-request collection.
    pub collector: ResponseTimeCollector,
    /// Per-server counters.
    pub server_stats: Vec<ServerStats>,
    /// Per-server `(time, busy)` load series (when recorded).
    pub load_series: Vec<Vec<(f64, usize)>>,
    /// Per-server first-candidate acceptance ratios.
    pub acceptance_ratios: Vec<f64>,
    /// Load-balancer counters.
    pub lb_stats: LbStats,
    /// Simulated duration in seconds.
    pub duration_seconds: f64,
}

impl ExperimentResult {
    /// Projects a [`RunOutcome`] into the legacy result shape.
    pub fn from_outcome(outcome: RunOutcome, rho: Option<f64>) -> Self {
        let summary = outcome.collector.summary(None);
        ExperimentResult {
            label: outcome.label,
            rho,
            sent: outcome.collector.len(),
            completed: outcome.collector.completed_count(),
            resets: outcome.collector.reset_count(),
            response_times: summary,
            collector: outcome.collector,
            server_stats: outcome.server_stats,
            load_series: outcome.load_series,
            acceptance_ratios: outcome.acceptance_ratios,
            lb_stats: outcome.lb_stats,
            duration_seconds: outcome.duration_seconds,
        }
    }

    /// Mean completed response time in seconds (how Figure 2 reports it).
    pub fn mean_response_seconds(&self) -> f64 {
        self.response_times.mean() / 1e3
    }

    /// CDF of completed response times in seconds, optionally filtered by
    /// request class (Figures 3, 5 and 8).
    pub fn cdf_seconds(&self, class: Option<RequestClass>) -> Cdf {
        Cdf::from_samples(
            self.collector
                .response_times_ms(class)
                .into_iter()
                .map(|ms| ms / 1e3),
        )
    }

    /// Fraction of requests that were reset.
    pub fn reset_fraction(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.resets as f64 / self.sent as f64
        }
    }

    /// Per-server completed-request counts.
    pub fn per_server_completed(&self) -> Vec<u64> {
        self.server_stats.iter().map(|s| s.completed).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlb_server::PolicyConfig;

    #[test]
    fn effective_lambda0_defaults_to_analytic_capacity() {
        let config = ExperimentConfig::poisson_paper(0.5, PolicyKind::RoundRobin);
        // 12 servers x 2 cores / 0.1 s = 240 queries/s.
        assert!((config.effective_lambda0().unwrap() - 240.0).abs() < 1e-9);
        let wiki = ExperimentConfig::wikipedia_paper(PolicyKind::RoundRobin);
        assert_eq!(wiki.effective_lambda0(), None);
    }

    #[test]
    fn quick_experiment_runs_and_reports() {
        let result = ExperimentConfig::poisson_quick(0.5, PolicyKind::Static { threshold: 4 })
            .with_queries(400)
            .with_seed(3)
            .run()
            .unwrap();
        assert_eq!(result.label, "SR4");
        assert_eq!(result.rho, Some(0.5));
        assert_eq!(result.sent, 400);
        assert!(result.completed > 0);
        assert!(result.mean_response_seconds() > 0.0);
        assert!(result.reset_fraction() < 0.5);
        assert_eq!(result.per_server_completed().len(), 12);
        let cdf = result.cdf_seconds(None);
        assert_eq!(cdf.count(), result.completed);
    }

    #[test]
    fn trace_workload_replays_explicit_requests() {
        let requests = ExperimentConfig::poisson_quick(0.3, PolicyKind::RoundRobin)
            .with_queries(100)
            .generate_requests();
        let config = ExperimentConfig {
            workload: WorkloadKind::Trace { requests },
            policy: PolicyKind::RoundRobin,
            servers: 4,
            workers: 8,
            cores: 2,
            backlog: 32,
            record_load: false,
            seed: 5,
        };
        let result = config.run().unwrap();
        assert_eq!(result.sent, 100);
        assert_eq!(result.label, "RR");
    }

    #[test]
    fn invalid_custom_policy_is_rejected() {
        let config = ExperimentConfig::poisson_quick(
            0.5,
            PolicyKind::Custom {
                candidates: 50,
                policy: PolicyConfig::Static { threshold: 2 },
            },
        )
        .with_queries(10);
        assert!(config.run().is_err());
    }

    #[test]
    fn builders_override_fields() {
        let config = ExperimentConfig::wikipedia_paper(PolicyKind::Dynamic)
            .with_hours(0.5)
            .with_servers(6)
            .with_seed(9)
            .with_load_recording();
        assert_eq!(config.servers, 6);
        assert_eq!(config.seed, 9);
        assert!(config.record_load);
        match config.workload {
            WorkloadKind::Wikipedia { hours, .. } => assert_eq!(hours, 0.5),
            _ => panic!("expected wikipedia workload"),
        }
        let spec = config.to_spec();
        assert_eq!(spec.cluster.initial_servers, 6);
        assert_eq!(spec.cluster.max_servers, 6);
        assert!(spec.cluster.record_load);
        assert!(spec.scenario.is_empty());
    }
}
