//! The load balancer's flow table.
//!
//! The only per-flow state SRLB keeps is the mapping *flow → accepting
//! server*, learned from the SRH the server inserts into its SYN-ACK.  Every
//! subsequent packet of the flow is steered to that server so a connection
//! is always handled by the instance that accepted it.

use std::collections::HashMap;
use std::net::Ipv6Addr;

use srlb_net::FlowKey;
use srlb_sim::{SimDuration, SimTime};

/// One flow-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlowEntry {
    server: Ipv6Addr,
    last_active: SimTime,
}

/// The flow → server stickiness table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowTable {
    entries: HashMap<FlowKey, FlowEntry>,
    idle_timeout: SimDuration,
    /// Total number of entries ever inserted.
    inserted: u64,
    /// Total number of entries removed by expiry.
    expired: u64,
}

impl FlowTable {
    /// Creates a flow table whose entries expire after `idle_timeout` without
    /// traffic.
    pub fn new(idle_timeout: SimDuration) -> Self {
        FlowTable {
            entries: HashMap::new(),
            idle_timeout,
            inserted: 0,
            expired: 0,
        }
    }

    /// A table with a five-minute idle timeout (a typical TCP session
    /// timeout for data-centre load balancers).
    pub fn with_default_timeout() -> Self {
        Self::new(SimDuration::from_secs(300))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of insertions performed.
    pub fn inserted_total(&self) -> u64 {
        self.inserted
    }

    /// Total number of entries removed by [`FlowTable::expire_idle`].
    pub fn expired_total(&self) -> u64 {
        self.expired
    }

    /// Records (or refreshes) the owner of `flow`.
    pub fn learn(&mut self, flow: FlowKey, server: Ipv6Addr, now: SimTime) {
        self.inserted += 1;
        self.entries.insert(
            flow,
            FlowEntry {
                server,
                last_active: now,
            },
        );
    }

    /// Looks up the owner of `flow`, refreshing its activity timestamp.
    pub fn lookup(&mut self, flow: &FlowKey, now: SimTime) -> Option<Ipv6Addr> {
        let entry = self.entries.get_mut(flow)?;
        entry.last_active = now;
        Some(entry.server)
    }

    /// Looks up the owner of `flow` without refreshing it.
    pub fn peek(&self, flow: &FlowKey) -> Option<Ipv6Addr> {
        self.entries.get(flow).map(|e| e.server)
    }

    /// Removes the entry for `flow` (connection closed), returning the owner.
    pub fn remove(&mut self, flow: &FlowKey) -> Option<Ipv6Addr> {
        self.entries.remove(flow).map(|e| e.server)
    }

    /// Drops every entry idle for longer than the configured timeout;
    /// returns how many were removed.
    pub fn expire_idle(&mut self, now: SimTime) -> usize {
        let timeout = self.idle_timeout;
        let before = self.entries.len();
        self.entries
            .retain(|_, e| now.duration_since(e.last_active) <= timeout);
        let removed = before - self.entries.len();
        self.expired += removed as u64;
        removed
    }
}

impl Default for FlowTable {
    fn default() -> Self {
        Self::with_default_timeout()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlb_net::Protocol;

    fn flow(port: u16) -> FlowKey {
        FlowKey::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8:1::".parse().unwrap(),
            port,
            80,
            Protocol::Tcp,
        )
    }

    fn server(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfd00, 0, 0, 1, 0, 0, 0, n)
    }

    #[test]
    fn learn_lookup_remove() {
        let mut table = FlowTable::with_default_timeout();
        assert!(table.is_empty());
        assert_eq!(table.lookup(&flow(1), SimTime::ZERO), None);

        table.learn(flow(1), server(3), SimTime::ZERO);
        table.learn(flow(2), server(5), SimTime::ZERO);
        assert_eq!(table.len(), 2);
        assert_eq!(table.lookup(&flow(1), SimTime::ZERO), Some(server(3)));
        assert_eq!(table.peek(&flow(2)), Some(server(5)));

        assert_eq!(table.remove(&flow(1)), Some(server(3)));
        assert_eq!(table.remove(&flow(1)), None);
        assert_eq!(table.len(), 1);
        assert_eq!(table.inserted_total(), 2);
    }

    #[test]
    fn relearning_overwrites_owner() {
        let mut table = FlowTable::with_default_timeout();
        table.learn(flow(1), server(3), SimTime::ZERO);
        table.learn(flow(1), server(7), SimTime::ZERO);
        assert_eq!(table.len(), 1);
        assert_eq!(table.peek(&flow(1)), Some(server(7)));
    }

    #[test]
    fn idle_entries_expire_but_active_ones_survive() {
        let mut table = FlowTable::new(SimDuration::from_secs(10));
        let t0 = SimTime::ZERO;
        table.learn(flow(1), server(1), t0);
        table.learn(flow(2), server(2), t0);

        // Refresh flow 2 at t = 8s.
        let t8 = t0 + SimDuration::from_secs(8);
        assert_eq!(table.lookup(&flow(2), t8), Some(server(2)));

        // At t = 15s, flow 1 (idle 15s) expires, flow 2 (idle 7s) survives.
        let t15 = t0 + SimDuration::from_secs(15);
        assert_eq!(table.expire_idle(t15), 1);
        assert_eq!(table.peek(&flow(1)), None);
        assert_eq!(table.peek(&flow(2)), Some(server(2)));
        assert_eq!(table.expired_total(), 1);
    }

    #[test]
    fn expiry_at_exact_timeout_keeps_entry() {
        let mut table = FlowTable::new(SimDuration::from_secs(10));
        table.learn(flow(1), server(1), SimTime::ZERO);
        assert_eq!(
            table.expire_idle(SimTime::ZERO + SimDuration::from_secs(10)),
            0
        );
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn default_is_five_minutes() {
        let table = FlowTable::default();
        assert_eq!(table.len(), 0);
        assert_eq!(table, FlowTable::with_default_timeout());
    }
}
