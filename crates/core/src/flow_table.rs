//! The load balancer's flow table.
//!
//! The only per-flow state SRLB keeps is the mapping *flow → accepting
//! server*, learned from the SRH the server inserts into its SYN-ACK.  Every
//! subsequent packet of the flow is steered to that server so a connection
//! is always handled by the instance that accepted it.
//!
//! `FlowKey` carries a cached, finalised 64-bit hash computed once at
//! construction, so the table uses a pass-through [`std::hash::BuildHasher`]
//! ([`PassthroughHashBuilder`]) instead of re-hashing every key with SipHash
//! on every map operation.
//!
//! The table implementation itself lives in [`crate::flow_state`]: a
//! sharded, optionally capacity-bounded store with incremental expiry.
//! [`FlowTable`] is the legacy name for that type and keeps the original
//! constructor surface (`new`, `with_default_timeout`) working unchanged.

use std::hash::{BuildHasher, Hasher};

/// A [`Hasher`] that passes an already-hashed `u64` straight through.
///
/// [`FlowKey`]'s `Hash` impl writes its cached FNV-1a + SplitMix64 hash as a
/// single `write_u64`, which this hasher returns verbatim; hashing a flow
/// key for a map operation is therefore a single field load.  Subsequent
/// writes (keys that emit more than one value) are folded in with a
/// SplitMix64 mix, and byte writes fall back to FNV-1a folding, so the
/// hasher stays correct — every write influences the result — for any other
/// key type it might be handed.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassthroughHasher {
    hash: u64,
    written: bool,
}

impl Hasher for PassthroughHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write_u64(&mut self, n: u64) {
        // Mixing the accumulated state *before* combining keeps the fold
        // order-sensitive (a plain `hash ^ n` would make [a, b] and [b, a]
        // collide).
        self.hash = if self.written {
            srlb_net::mix64(srlb_net::mix64(self.hash) ^ n)
        } else {
            n
        };
        self.written = true;
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-pre-hashed keys: FNV-1a over the bytes, seeded
        // with any state already accumulated.
        let mut h = if self.written {
            self.hash
        } else {
            0xcbf2_9ce4_8422_2325
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.hash = h;
        self.written = true;
    }
}

/// [`BuildHasher`] producing [`PassthroughHasher`]s; see there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassthroughHashBuilder;

impl BuildHasher for PassthroughHashBuilder {
    type Hasher = PassthroughHasher;

    fn build_hasher(&self) -> PassthroughHasher {
        PassthroughHasher::default()
    }
}

/// The flow → server stickiness table.
///
/// Legacy name for [`crate::flow_state::FlowState`]; `FlowTable::new` builds
/// the default (unbounded, 8-shard) configuration, matching the behaviour of
/// the original single-map table while gaining incremental expiry and
/// optional capacity bounding.
pub type FlowTable = crate::flow_state::FlowState;

#[cfg(test)]
mod tests {
    use std::net::Ipv6Addr;

    use srlb_net::{FlowKey, Protocol};
    use srlb_sim::{SimDuration, SimTime};

    use super::*;

    fn flow(port: u16) -> FlowKey {
        FlowKey::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8:1::".parse().unwrap(),
            port,
            80,
            Protocol::Tcp,
        )
    }

    fn server(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0xfd00, 0, 0, 1, 0, 0, 0, n)
    }

    #[test]
    fn passthrough_hasher_returns_prehashed_value() {
        let f = flow(77);
        assert_eq!(PassthroughHashBuilder.hash_one(f), f.stable_hash());
    }

    #[test]
    fn passthrough_hasher_folds_multiple_writes() {
        let h = |vals: &[u64]| {
            let mut hasher = PassthroughHashBuilder.build_hasher();
            for &v in vals {
                hasher.write_u64(v);
            }
            hasher.finish()
        };
        // Single pre-hashed write passes through verbatim …
        assert_eq!(h(&[5]), 5);
        // … but every write of a multi-value key influences the result.
        assert_ne!(h(&[1, 2]), h(&[3, 2]));
        assert_ne!(h(&[1, 2]), h(&[1, 3]));
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
    }

    #[test]
    fn passthrough_hasher_fallback_distinguishes_byte_strings() {
        let h = |bytes: &[u8]| {
            let mut hasher = PassthroughHashBuilder.build_hasher();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"abc"), h(b"abd"));
        assert_eq!(h(b"abc"), h(b"abc"));
    }

    #[test]
    fn learn_lookup_remove() {
        let mut table = FlowTable::with_default_timeout();
        assert!(table.is_empty());
        assert_eq!(table.lookup(&flow(1), SimTime::ZERO), None);

        table.learn(flow(1), server(3), SimTime::ZERO);
        table.learn(flow(2), server(5), SimTime::ZERO);
        assert_eq!(table.len(), 2);
        assert_eq!(table.lookup(&flow(1), SimTime::ZERO), Some(server(3)));
        assert_eq!(table.peek(&flow(2)), Some(server(5)));

        assert_eq!(table.remove(&flow(1)), Some(server(3)));
        assert_eq!(table.remove(&flow(1)), None);
        assert_eq!(table.len(), 1);
        assert_eq!(table.inserted_total(), 2);
    }

    #[test]
    fn relearning_overwrites_owner() {
        let mut table = FlowTable::with_default_timeout();
        table.learn(flow(1), server(3), SimTime::ZERO);
        table.learn(flow(1), server(7), SimTime::ZERO);
        assert_eq!(table.len(), 1);
        assert_eq!(table.peek(&flow(1)), Some(server(7)));
    }

    #[test]
    fn idle_entries_expire_but_active_ones_survive() {
        let mut table = FlowTable::new(SimDuration::from_secs(10));
        let t0 = SimTime::ZERO;
        table.learn(flow(1), server(1), t0);
        table.learn(flow(2), server(2), t0);

        // Refresh flow 2 at t = 8s.
        let t8 = t0 + SimDuration::from_secs(8);
        assert_eq!(table.lookup(&flow(2), t8), Some(server(2)));

        // At t = 15s, flow 1 (idle 15s) expires, flow 2 (idle 7s) survives.
        let t15 = t0 + SimDuration::from_secs(15);
        assert_eq!(table.expire_idle(t15), 1);
        assert_eq!(table.peek(&flow(1)), None);
        assert_eq!(table.peek(&flow(2)), Some(server(2)));
        assert_eq!(table.expired_total(), 1);
    }

    #[test]
    fn expiry_at_exact_timeout_keeps_entry() {
        let mut table = FlowTable::new(SimDuration::from_secs(10));
        table.learn(flow(1), server(1), SimTime::ZERO);
        assert_eq!(
            table.expire_idle(SimTime::ZERO + SimDuration::from_secs(10)),
            0
        );
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn default_is_five_minutes() {
        let table = FlowTable::default();
        assert_eq!(table.len(), 0);
        assert_eq!(table, FlowTable::with_default_timeout());
    }
}
