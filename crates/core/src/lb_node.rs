//! The SRLB load balancer as a simulation node.
//!
//! The load balancer sits at the edge of the data centre and advertises the
//! VIPs.  Its entire job (paper Section II) is:
//!
//! 1. on a **new flow** (TCP SYN towards a VIP): pick the candidate servers,
//!    insert the Service Hunting SRH `[candidate₁, …, candidateₖ, VIP]` and
//!    forward the packet to the first candidate,
//! 2. on a **connection acceptance** (SYN-ACK carrying the server-inserted
//!    SRH, whose active segment is the load balancer): learn *flow → server*
//!    in the flow table and forward the SYN-ACK on to the client,
//! 3. on **subsequent packets** of a known flow: steer them to the owning
//!    server by inserting the SRH `[server, VIP]`,
//! 4. everything else is forwarded by plain destination routing.
//!
//! The load balancer never inspects application payloads and holds no
//! application state: all it learns is which server accepted each flow.

use std::net::Ipv6Addr;

use serde::{Deserialize, Serialize};

use srlb_net::{Packet, SegmentRoutingHeader};
use srlb_server::Directory;
use srlb_sim::{Context, Node, NodeId, SimDuration, SimTime, TimerToken};

use crate::dispatch::{CandidateList, Dispatcher};
use crate::flow_table::FlowTable;

/// Counters exposed by the load balancer after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LbStats {
    /// New flows dispatched (SYNs that received a Service Hunting SRH).
    pub new_flows: u64,
    /// Flow-table entries learned from acceptance SYN-ACKs (including
    /// post-failover ownership adverts).
    pub flows_learned: u64,
    /// Established-flow packets steered to their owning server.
    pub steered: u64,
    /// Established-flow packets dropped because no flow entry existed.
    pub missing_flow: u64,
    /// Established-flow packets with no flow entry that were *re-hunted*
    /// through the candidate list instead of dropped (in-band flow-table
    /// reconstruction after a failover).
    pub rehunts: u64,
    /// Fail-overs applied to this load balancer (flow-table wipes).
    pub failovers: u64,
    /// Packets forwarded by plain destination routing.
    pub forwarded: u64,
    /// Flow-table entries removed by idle expiry.  Zero unless an expiry
    /// sweep is configured.
    #[serde(default, skip_serializing_if = "flow_stat_is_zero")]
    pub flow_expired: u64,
    /// Flow-table entries evicted under capacity pressure that had already
    /// outlived the idle timeout.  Zero for unbounded tables.
    #[serde(default, skip_serializing_if = "flow_stat_is_zero")]
    pub flow_evicted_expired: u64,
    /// Flow-table entries evicted under capacity pressure after being idle
    /// for at least half the timeout.  Zero for unbounded tables.
    #[serde(default, skip_serializing_if = "flow_stat_is_zero")]
    pub flow_evicted_idle: u64,
    /// Recently-active flow-table entries evicted under capacity pressure —
    /// the evictions that can break an established connection's affinity,
    /// counted so they are never silent.  Zero for unbounded tables.
    #[serde(default, skip_serializing_if = "flow_stat_is_zero")]
    pub flow_evicted_active: u64,
    /// Highest flow-table occupancy reached.  Reported (and serialized)
    /// only for capacity-bounded tables, so default configurations keep
    /// their serialized stats byte-identical.
    #[serde(default, skip_serializing_if = "flow_stat_is_zero")]
    pub flow_peak_occupancy: u64,
}

/// Serde skip predicate for the flow-state counters of [`LbStats`], keeping
/// serialized stats of default (unbounded, sweep-less) configurations
/// byte-identical to the pre-flow-state form.
fn flow_stat_is_zero(n: &u64) -> bool {
    *n == 0
}

impl LbStats {
    /// Adds another counter snapshot field-wise.  `LbStats::default()` is
    /// the identity and the operation is associative (and commutative), so
    /// folding any grouping of per-instance snapshots yields the same
    /// tier-wide aggregate — the property the multi-LB runner relies on
    /// when it merges N instances' counters (and, for N = 1, exactly the
    /// single load balancer's own counters).
    ///
    /// Counters are summed; `flow_peak_occupancy` takes the maximum across
    /// instances (also associative and commutative with identity 0), which
    /// is the per-instance memory high-water mark the capacity bound is
    /// provisioned against.
    pub fn merge(&mut self, other: LbStats) {
        self.new_flows += other.new_flows;
        self.flows_learned += other.flows_learned;
        self.steered += other.steered;
        self.missing_flow += other.missing_flow;
        self.rehunts += other.rehunts;
        self.failovers += other.failovers;
        self.forwarded += other.forwarded;
        self.flow_expired += other.flow_expired;
        self.flow_evicted_expired += other.flow_evicted_expired;
        self.flow_evicted_idle += other.flow_evicted_idle;
        self.flow_evicted_active += other.flow_evicted_active;
        self.flow_peak_occupancy = self.flow_peak_occupancy.max(other.flow_peak_occupancy);
    }

    /// Folds an iterator of per-instance snapshots into the tier-wide
    /// aggregate.
    pub fn merged(stats: impl IntoIterator<Item = LbStats>) -> LbStats {
        let mut total = LbStats::default();
        for s in stats {
            total.merge(s);
        }
        total
    }
}

/// Timer token used for the periodic flow-table expiry sweep.
const EXPIRY_TIMER: TimerToken = TimerToken(u64::MAX);

/// Maximum dispatcher fan-out compatible with in-band flow recovery: a
/// re-hunt route must fit the load-balancer marker segment and the VIP
/// alongside the candidates.
pub const MAX_RECOVERY_CANDIDATES: usize = srlb_net::MAX_SEGMENTS - 2;

/// The SRLB load balancer node.
#[derive(Debug)]
pub struct LoadBalancerNode {
    addr: Ipv6Addr,
    /// The VIPs this load balancer advertises (at least one; several
    /// applications can share the same backend cluster).
    vips: Vec<Ipv6Addr>,
    directory: Directory,
    dispatcher: Box<dyn Dispatcher>,
    flow_table: FlowTable,
    stats: LbStats,
    expiry_interval: Option<SimDuration>,
    /// When `true`, an established-flow packet with no flow-table entry is
    /// re-hunted through the candidate list (and the owning server adverts
    /// itself back) instead of being dropped — the in-band SYN-ACK-style
    /// flow-table reconstruction used after a fail-over.
    recover_flows: bool,
    /// Time of the last fail-over ([`LoadBalancerNode::fail_over`]).
    failed_over_at: Option<SimTime>,
    /// Time of the last re-hunt (drives the reconstruction-latency metric).
    last_rehunt_at: Option<SimTime>,
    /// Reusable candidate/route buffer, so dispatching a new flow performs
    /// no per-packet heap allocation.
    route_scratch: CandidateList,
}

impl LoadBalancerNode {
    /// Creates a load balancer advertising `vip`, reachable at `addr`.
    pub fn new(
        addr: Ipv6Addr,
        vip: Ipv6Addr,
        directory: Directory,
        dispatcher: Box<dyn Dispatcher>,
    ) -> Self {
        LoadBalancerNode {
            addr,
            vips: vec![vip],
            directory,
            dispatcher,
            flow_table: FlowTable::with_default_timeout(),
            stats: LbStats::default(),
            expiry_interval: None,
            recover_flows: false,
            failed_over_at: None,
            last_rehunt_at: None,
            route_scratch: CandidateList::new(),
        }
    }

    /// Enables a periodic flow-table expiry sweep with the given interval.
    pub fn with_expiry_sweep(mut self, interval: SimDuration) -> Self {
        self.expiry_interval = Some(interval);
        self
    }

    /// Replaces the flow table (e.g. to use a shorter idle timeout in tests).
    pub fn with_flow_table(mut self, table: FlowTable) -> Self {
        self.flow_table = table;
        self
    }

    /// Replaces the advertised VIP set (multi-service clusters).
    ///
    /// # Panics
    ///
    /// Panics if `vips` is empty.
    pub fn with_vips(mut self, vips: Vec<Ipv6Addr>) -> Self {
        assert!(!vips.is_empty(), "at least one VIP is required");
        self.vips = vips;
        self
    }

    /// Enables in-band flow-table reconstruction: on a flow-table miss for
    /// an established flow, re-hunt the packet through the candidate list
    /// instead of dropping it, and re-learn the owner from the server's
    /// ownership advert.
    ///
    /// # Panics
    ///
    /// Panics if the dispatcher's fan-out exceeds
    /// [`MAX_RECOVERY_CANDIDATES`] (the re-hunt route also carries the
    /// load-balancer marker and the VIP).
    pub fn with_flow_recovery(mut self) -> Self {
        assert!(
            self.dispatcher.fanout() <= MAX_RECOVERY_CANDIDATES,
            "flow recovery supports at most {MAX_RECOVERY_CANDIDATES} candidates per flow"
        );
        self.recover_flows = true;
        self
    }

    /// The load balancer's own address.
    pub fn addr(&self) -> Ipv6Addr {
        self.addr
    }

    /// The advertised VIPs.
    pub fn vips(&self) -> &[Ipv6Addr] {
        &self.vips
    }

    /// Run counters, with the flow table's occupancy/eviction/expiry
    /// statistics folded in at read time.
    pub fn stats(&self) -> LbStats {
        let mut stats = self.stats;
        let fs = self.flow_table.stats();
        stats.flow_expired = fs.expired;
        stats.flow_evicted_expired = fs.evictions.expired;
        stats.flow_evicted_idle = fs.evictions.idle;
        stats.flow_evicted_active = fs.evictions.active;
        stats.flow_peak_occupancy = fs.peak_occupancy;
        stats
    }

    /// Number of live flow-table entries.
    pub fn flow_table_len(&self) -> usize {
        self.flow_table.len()
    }

    /// The dispatcher's name (for reports).
    pub fn dispatcher_name(&self) -> String {
        self.dispatcher.name()
    }

    /// The dispatcher's current backend set.
    pub fn backends(&self) -> &[Ipv6Addr] {
        self.dispatcher.backends()
    }

    /// Rebuilds the dispatcher over a new backend set (server churn).
    /// Existing flow-table entries are untouched: established flows keep
    /// flowing to their owner (even one no longer in the candidate set)
    /// until they finish or expire.
    ///
    /// # Panics
    ///
    /// Panics if flow recovery is enabled and the rebuilt dispatcher's
    /// fan-out (which growth can raise back to its configured value)
    /// exceeds [`MAX_RECOVERY_CANDIDATES`].
    pub fn rebuild_backends(&mut self, servers: Vec<Ipv6Addr>) {
        self.dispatcher.rebuild(servers);
        assert!(
            !self.recover_flows || self.dispatcher.fanout() <= MAX_RECOVERY_CANDIDATES,
            "flow recovery supports at most {MAX_RECOVERY_CANDIDATES} candidates per flow"
        );
    }

    /// Simulates the fail-over of this load balancer to a cold standby at
    /// the same address: all per-flow state is lost (the standby starts with
    /// an empty flow table) and must be reconstructed in-band from SYN-ACKs
    /// and ownership adverts.  The table's configuration and accumulated
    /// occupancy/eviction statistics survive the wipe.  Returns the number
    /// of entries lost.
    pub fn fail_over(&mut self, now: SimTime) -> usize {
        let lost = self.flow_table.wipe();
        self.stats.failovers += 1;
        self.failed_over_at = Some(now);
        self.last_rehunt_at = None;
        lost
    }

    /// Seconds between the last fail-over and the most recent re-hunt — an
    /// upper bound on how long the flow table kept being reconstructed.
    /// `None` until a fail-over has happened and a re-hunt has followed it.
    pub fn reconstruction_latency_seconds(&self) -> Option<f64> {
        let failed = self.failed_over_at?;
        let last = self.last_rehunt_at?;
        Some(last.duration_since(failed).as_secs_f64())
    }

    /// Returns `true` if `addr` is one of the advertised VIPs.
    fn is_vip(&self, addr: Ipv6Addr) -> bool {
        self.vips.contains(&addr)
    }

    fn send_to_addr(&self, ctx: &mut Context<'_, Packet>, addr: Ipv6Addr, packet: Packet) {
        if let Some(node) = self.directory.lookup(addr) {
            ctx.send(node, packet);
        }
    }

    /// Builds the Service Hunting SRH for `packet`'s flow and forwards the
    /// packet to the first candidate.  Shared between new-flow dispatch and
    /// post-failover re-hunting.
    fn hunt(&mut self, mut packet: Packet, ctx: &mut Context<'_, Packet>) {
        let flow = packet.flow_key_forward();
        // The flow's own VIP terminates the route, so several VIPs can share
        // one cluster.
        let vip = flow.vip();
        // Dispatchers clear the buffer themselves, but the capacity
        // invariant belongs to the buffer's owner: clear defensively so a
        // third-party `Dispatcher` impl that only appends cannot overflow
        // the route scratch across flows.
        self.route_scratch.clear();
        self.dispatcher
            .candidates_into(&flow, ctx.rng(), &mut self.route_scratch);
        self.route_scratch.push(vip);
        let srh = SegmentRoutingHeader::from_route(self.route_scratch.as_slice())
            // srlb-lint: allow(panic-hygiene) -- the VIP was just pushed, so the route is non-empty and within MAX_SEGMENTS (checked at construction)
            .expect("candidate list plus VIP is a non-empty route");
        let first_hop = srh.active_segment();
        packet.insert_srh(srh);
        self.send_to_addr(ctx, first_hop, packet);
    }

    /// Handles a new flow: builds the Service Hunting SRH and forwards the
    /// SYN to the first candidate.
    fn dispatch_new_flow(&mut self, packet: Packet, ctx: &mut Context<'_, Packet>) {
        self.stats.new_flows += 1;
        self.hunt(packet, ctx);
    }

    /// Re-hunts an established-flow packet whose flow-table entry was lost:
    /// the route is `[lb, candidate₁, …, candidateₖ, VIP]` with the load
    /// balancer as the (already-consumed) first segment — the same identity
    /// trick acceptance SRHs use — so servers can tell a re-hunt from
    /// steered traffic (whose first segment is the owning server itself)
    /// for *any* candidate count, and route it by connection ownership.
    fn rehunt(&mut self, mut packet: Packet, ctx: &mut Context<'_, Packet>) {
        let flow = packet.flow_key_forward();
        let vip = flow.vip();
        self.route_scratch.clear();
        self.dispatcher
            .candidates_into(&flow, ctx.rng(), &mut self.route_scratch);
        let k = self.route_scratch.len();
        debug_assert!(k <= MAX_RECOVERY_CANDIDATES, "checked at construction");
        let mut route = [Ipv6Addr::UNSPECIFIED; srlb_net::MAX_SEGMENTS];
        route[0] = self.addr;
        route[1..=k].copy_from_slice(self.route_scratch.as_slice());
        route[k + 1] = vip;
        let mut srh = SegmentRoutingHeader::from_route(&route[..k + 2])
            // srlb-lint: allow(panic-hygiene) -- k ≤ MAX_RECOVERY_CANDIDATES is enforced at construction, so k+2 segments always fit
            .expect("lb marker, candidates and VIP fit one re-hunt route");
        srh.set_segments_left(k as u8)
            // srlb-lint: allow(panic-hygiene) -- k < k+2 segments, so the index is always in range
            .expect("the first candidate is a valid active segment");
        let first_hop = srh.active_segment();
        packet.insert_srh(srh);
        self.send_to_addr(ctx, first_hop, packet);
    }

    /// Handles a server's acceptance SYN-ACK: learn the flow and forward the
    /// packet towards the client.
    fn learn_and_forward(&mut self, mut packet: Packet, ctx: &mut Context<'_, Packet>) {
        let Some(srh) = packet.srh.as_ref() else {
            return;
        };
        let server = srh.first_segment();
        let flow = packet.flow_key_reverse();
        self.flow_table.learn(flow, server, ctx.now());
        self.stats.flows_learned += 1;
        // Acceptance SYN-ACKs and ownership adverts carry the server's load
        // hint; feed it to the dispatcher (a no-op for load-oblivious ones).
        if let Some((busy, workers, backlog)) =
            srlb_server::server_node::decode_load_hint(&packet.payload)
        {
            if workers > 0 {
                let load = f64::from(busy + backlog) / f64::from(workers);
                self.dispatcher
                    .observe_load(server, load, ctx.now().as_secs_f64());
            }
        }
        // Advance past our own segment and forward to the client.
        if let Ok(next_hop) = packet.advance_segment() {
            self.send_to_addr(ctx, next_hop, packet);
        }
    }

    /// Handles an established-flow packet: steer it to the owning server,
    /// or — when flow recovery is enabled and the entry is missing (lost in
    /// a fail-over) — re-hunt it through the candidate list so the owner
    /// re-announces itself.
    fn steer(&mut self, mut packet: Packet, ctx: &mut Context<'_, Packet>) {
        let flow = packet.flow_key_forward();
        match self.flow_table.lookup(&flow, ctx.now()) {
            Some(server) => {
                let srh = SegmentRoutingHeader::from_route(&[server, flow.vip()])
                    // srlb-lint: allow(panic-hygiene) -- a fixed two-segment route can never be empty or exceed MAX_SEGMENTS
                    .expect("two-segment steering route is valid");
                packet.insert_srh(srh);
                self.stats.steered += 1;
                self.send_to_addr(ctx, server, packet);
            }
            None if self.recover_flows => {
                self.stats.rehunts += 1;
                self.last_rehunt_at = Some(ctx.now());
                self.rehunt(packet, ctx);
            }
            None => {
                self.stats.missing_flow += 1;
            }
        }
    }
}

impl Node<Packet> for LoadBalancerNode {
    fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
        if let Some(interval) = self.expiry_interval {
            ctx.schedule_timer(interval, EXPIRY_TIMER);
        }
    }

    fn on_message(&mut self, packet: Packet, _from: NodeId, ctx: &mut Context<'_, Packet>) {
        let dest = packet.current_destination();
        if dest == self.addr && packet.srh.is_some() {
            // A packet whose active segment is the load balancer itself: a
            // connection-acceptance SYN-ACK (or post-failover ownership
            // advert) inserted by a server.
            self.learn_and_forward(packet, ctx);
        } else if self.is_vip(dest) || self.is_vip(packet.final_destination()) {
            if packet.is_syn() {
                self.dispatch_new_flow(packet, ctx);
            } else {
                self.steer(packet, ctx);
            }
        } else {
            // Plain destination routing for anything else (e.g. return
            // traffic transiting the load balancer).
            self.stats.forwarded += 1;
            self.send_to_addr(ctx, dest, packet);
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, Packet>) {
        if token == EXPIRY_TIMER {
            self.flow_table.expire_idle(ctx.now());
            if let Some(interval) = self.expiry_interval {
                ctx.schedule_timer(interval, EXPIRY_TIMER);
            }
        }
    }

    fn name(&self) -> String {
        "load-balancer".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::RandomDispatcher;

    fn sample_stats(seed: u64) -> LbStats {
        LbStats {
            new_flows: seed,
            flows_learned: seed.wrapping_mul(3) % 97,
            steered: seed.wrapping_mul(5) % 89,
            missing_flow: seed % 7,
            rehunts: seed % 11,
            failovers: seed % 3,
            forwarded: seed % 13,
            flow_expired: seed.wrapping_mul(7) % 83,
            flow_evicted_expired: seed % 17,
            flow_evicted_idle: seed % 19,
            flow_evicted_active: seed % 23,
            flow_peak_occupancy: seed.wrapping_mul(11) % 101,
        }
    }

    #[test]
    fn lb_stats_merge_identity() {
        for seed in [0u64, 1, 17, 123_456] {
            let s = sample_stats(seed);
            let mut left = LbStats::default();
            left.merge(s);
            assert_eq!(left, s, "default is a left identity");
            let mut right = s;
            right.merge(LbStats::default());
            assert_eq!(right, s, "default is a right identity");
        }
        assert_eq!(LbStats::merged([]), LbStats::default());
    }

    #[test]
    fn lb_stats_merge_associativity() {
        let (a, b, c) = (sample_stats(3), sample_stats(40), sample_stats(777));
        let mut ab = a;
        ab.merge(b);
        let mut ab_c = ab;
        ab_c.merge(c);
        let mut bc = b;
        bc.merge(c);
        let mut a_bc = a;
        a_bc.merge(bc);
        assert_eq!(ab_c, a_bc, "(a+b)+c == a+(b+c)");
        assert_eq!(LbStats::merged([a, b, c]), ab_c);
    }

    #[test]
    fn lb_stats_merge_takes_max_of_peak_occupancy() {
        let mut a = LbStats {
            flow_peak_occupancy: 10,
            ..LbStats::default()
        };
        a.merge(LbStats {
            flow_peak_occupancy: 7,
            flow_evicted_active: 2,
            ..LbStats::default()
        });
        assert_eq!(a.flow_peak_occupancy, 10, "peak merges as max, not sum");
        assert_eq!(a.flow_evicted_active, 2);
    }

    #[test]
    fn lb_stats_flow_counters_are_serde_skipped_when_zero() {
        let json = serde_json::to_string(&LbStats::default()).unwrap();
        assert!(
            !json.contains("flow_"),
            "zero flow-state counters must not serialize: {json}"
        );
        let full = sample_stats(123_456);
        let round: LbStats = serde_json::from_str(&serde_json::to_string(&full).unwrap()).unwrap();
        assert_eq!(round, full);
        let legacy: LbStats = serde_json::from_str(&json).unwrap();
        assert_eq!(legacy, LbStats::default(), "old stats deserialize cleanly");
    }
    use srlb_net::{AddressPlan, PacketBuilder, ServerId, TcpFlags};
    use srlb_server::{PolicyConfig, ServerConfig, ServerNode};
    use srlb_sim::{Network, RunUntil, Topology};

    /// A sink node that records every packet it receives.
    #[derive(Debug, Default)]
    struct Sink {
        received: Vec<Packet>,
    }

    impl Node<Packet> for Sink {
        fn on_message(&mut self, packet: Packet, _from: NodeId, _ctx: &mut Context<'_, Packet>) {
            self.received.push(packet);
        }
    }

    /// Builds a tiny cluster: one sink client, the LB, and `n` servers with
    /// the given policy; returns (network, client id, lb id, server ids).
    fn build_cluster(
        n: u32,
        policy: PolicyConfig,
        k: usize,
    ) -> (Network<Packet>, NodeId, NodeId, Vec<NodeId>) {
        let plan = AddressPlan::default();
        let mut directory = Directory::new();
        let client_id = NodeId(0);
        let lb_id = NodeId(1);
        let server_ids: Vec<NodeId> = (0..n).map(|i| NodeId(2 + i as usize)).collect();
        directory.register(plan.client_addr(0), client_id);
        directory.register(plan.lb_addr(), lb_id);
        directory.register(plan.vip(0), lb_id);
        for i in 0..n {
            directory.register(plan.server_addr(ServerId(i)), server_ids[i as usize]);
        }

        let mut net = Network::new(7, Topology::datacenter());
        let c = net.add_node(Sink::default());
        let servers: Vec<Ipv6Addr> = plan.server_addrs(n).collect();
        let lb = net.add_node(LoadBalancerNode::new(
            plan.lb_addr(),
            plan.vip(0),
            directory.clone(),
            Box::new(RandomDispatcher::new(servers, k)),
        ));
        let mut sids = Vec::new();
        for i in 0..n {
            let cfg = ServerConfig::paper(i, plan.server_addr(ServerId(i)), plan.lb_addr(), policy);
            sids.push(net.add_node(ServerNode::new(cfg, directory.clone())));
        }
        assert_eq!(c, client_id);
        assert_eq!(lb, lb_id);
        assert_eq!(sids, server_ids);
        (net, client_id, lb_id, server_ids)
    }

    fn syn(port: u16) -> Packet {
        let plan = AddressPlan::default();
        PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
            .ports(port, 80)
            .flags(TcpFlags::SYN)
            .build()
    }

    /// A driver node that fires one SYN towards the VIP at start-up.
    #[derive(Debug)]
    struct SynSource {
        lb: NodeId,
        port: u16,
    }

    impl Node<Packet> for SynSource {
        fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
            ctx.send(self.lb, syn(self.port));
        }
        fn on_message(&mut self, _p: Packet, _f: NodeId, _c: &mut Context<'_, Packet>) {}
    }

    #[test]
    fn syn_gets_service_hunting_srh_and_reaches_a_server() {
        let (mut net, _client, lb, _servers) =
            build_cluster(4, PolicyConfig::Static { threshold: 4 }, 2);
        // Add a driver that sends one SYN to the LB.
        net.add_node(SynSource { lb, port: 40_000 });
        net.run_until(RunUntil::Drained);

        let lb_node: LoadBalancerNode = net.take_node(lb).unwrap();
        assert_eq!(lb_node.stats().new_flows, 1);
        assert_eq!(lb_node.stats().flows_learned, 1, "SYN-ACK learned the flow");
        assert_eq!(lb_node.flow_table_len(), 1);
        assert_eq!(lb_node.dispatcher_name(), "random-2");

        // The client sink received the SYN-ACK forwarded by the LB.
        let sink: Sink = net.take_node(NodeId(0)).unwrap();
        assert_eq!(sink.received.len(), 1);
        let syn_ack = &sink.received[0];
        assert!(syn_ack.is_syn_ack());
        let srh = syn_ack.srh.as_ref().expect("acceptance SRH present");
        assert_eq!(srh.segments_left(), 0);
        let plan = AddressPlan::default();
        assert!(plan.server_of(srh.first_segment()).is_some());
    }

    #[test]
    fn rr_baseline_uses_single_candidate() {
        let (mut net, _client, lb, servers) = build_cluster(4, PolicyConfig::NeverAccept, 1);
        net.add_node(SynSource { lb, port: 41_000 });
        net.run_until(RunUntil::Drained);
        let lb_node: LoadBalancerNode = net.take_node(lb).unwrap();
        assert_eq!(lb_node.stats().new_flows, 1);
        assert_eq!(lb_node.stats().flows_learned, 1);
        // Exactly one server saw a forced accept (single candidate), and no
        // server passed the connection on.
        let mut forced = 0;
        let mut passed = 0;
        for sid in servers {
            let s: ServerNode = net.take_node(sid).unwrap();
            forced += s.stats().forced_accepts;
            passed += s.stats().passed_on;
        }
        assert_eq!(forced, 1);
        assert_eq!(passed, 0);
    }

    #[test]
    fn non_syn_packet_without_flow_entry_is_dropped() {
        let plan = AddressPlan::default();
        let (mut net, _client, lb, _servers) =
            build_cluster(2, PolicyConfig::Static { threshold: 4 }, 2);

        #[derive(Debug)]
        struct AckSource {
            lb: NodeId,
        }
        impl Node<Packet> for AckSource {
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                let plan = AddressPlan::default();
                let ack = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
                    .ports(42_000, 80)
                    .flags(TcpFlags::ACK)
                    .build();
                ctx.send(self.lb, ack);
            }
            fn on_message(&mut self, _p: Packet, _f: NodeId, _c: &mut Context<'_, Packet>) {}
        }
        net.add_node(AckSource { lb });
        net.run_until(RunUntil::Drained);
        let lb_node: LoadBalancerNode = net.take_node(lb).unwrap();
        assert_eq!(lb_node.stats().missing_flow, 1);
        assert_eq!(lb_node.stats().new_flows, 0);
        let _ = plan;
    }

    /// A driver node that fires one established-flow request (ACK|PSH with a
    /// service payload) towards the VIP at start-up.
    #[derive(Debug)]
    struct RequestSource {
        lb: NodeId,
        port: u16,
    }

    impl Node<Packet> for RequestSource {
        fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
            let plan = AddressPlan::default();
            let request = PacketBuilder::tcp(plan.client_addr(0), plan.vip(0))
                .ports(self.port, 80)
                .flags(TcpFlags::ACK | TcpFlags::PSH)
                .payload(srlb_server::server_node::encode_request_payload(
                    0,
                    srlb_sim::SimDuration::from_millis(5),
                ))
                .build();
            ctx.send(self.lb, request);
        }
        fn on_message(&mut self, _p: Packet, _f: NodeId, _c: &mut Context<'_, Packet>) {}
    }

    #[test]
    fn failover_recovery_relearns_from_ownership_advert() {
        // Same wiring as build_cluster, but with a deterministic
        // consistent-hash dispatcher and in-band flow recovery enabled.
        let plan = AddressPlan::default();
        let n = 4u32;
        let mut directory = Directory::new();
        let client_id = NodeId(0);
        let lb_id = NodeId(1);
        directory.register(plan.client_addr(0), client_id);
        directory.register(plan.lb_addr(), lb_id);
        directory.register(plan.vip(0), lb_id);
        for i in 0..n {
            directory.register(plan.server_addr(ServerId(i)), NodeId(2 + i as usize));
        }
        let mut net = Network::new(7, srlb_sim::Topology::datacenter());
        net.add_node(Sink::default());
        let servers: Vec<Ipv6Addr> = plan.server_addrs(n).collect();
        let lb = net.add_node(
            LoadBalancerNode::new(
                plan.lb_addr(),
                plan.vip(0),
                directory.clone(),
                Box::new(crate::dispatch::ConsistentHashDispatcher::new(
                    servers, 64, 2,
                )),
            )
            .with_flow_recovery(),
        );
        for i in 0..n {
            let cfg = ServerConfig::paper(
                i,
                plan.server_addr(ServerId(i)),
                plan.lb_addr(),
                PolicyConfig::Static { threshold: 4 },
            );
            net.add_node(ServerNode::new(cfg, directory.clone()));
        }

        // Establish one connection.
        net.add_node(SynSource { lb, port: 50_000 });
        net.run_until(RunUntil::Drained);
        assert_eq!(
            net.node_as::<LoadBalancerNode>(lb)
                .unwrap()
                .flow_table_len(),
            1
        );

        // Fail over: the standby starts with an empty flow table.
        let lost = net
            .control::<LoadBalancerNode, _>(lb, |l, ctx| l.fail_over(ctx.now()))
            .unwrap();
        assert_eq!(lost, 1);
        assert_eq!(
            net.node_as::<LoadBalancerNode>(lb)
                .unwrap()
                .flow_table_len(),
            0
        );

        // The request packet of the established flow arrives at the fresh
        // table: it is re-hunted, the owner adverts itself, the table is
        // reconstructed, and the request is served.
        net.add_node(RequestSource { lb, port: 50_000 });
        net.run_until(RunUntil::Drained);
        let lb_node: LoadBalancerNode = net.take_node(lb).unwrap();
        assert_eq!(lb_node.stats().failovers, 1);
        assert_eq!(lb_node.stats().rehunts, 1);
        assert_eq!(lb_node.stats().missing_flow, 0);
        assert_eq!(lb_node.flow_table_len(), 1, "table reconstructed in-band");
        assert!(lb_node.reconstruction_latency_seconds().unwrap() >= 0.0);

        // The client received the SYN-ACK, the forwarded ownership advert
        // and the served response; exactly one candidate advertised.
        let sink: Sink = net.take_node(NodeId(0)).unwrap();
        assert!(sink
            .received
            .iter()
            .any(|p| p.tcp.flags.contains(TcpFlags::PSH)));
        let mut adverts = 0;
        for i in 0..4usize {
            let s: ServerNode = net.take_node(NodeId(2 + i)).unwrap();
            adverts += s.stats().ownership_adverts;
            assert_eq!(s.stats().orphaned, 0);
        }
        assert_eq!(adverts, 1);
    }

    #[test]
    fn multiple_vips_share_the_cluster() {
        let plan = AddressPlan::default();
        let (mut net, _client, lb, _servers) =
            build_cluster(4, PolicyConfig::Static { threshold: 4 }, 2);
        // Advertise a second VIP on the same load balancer.
        let lb_vips = vec![plan.vip(0), plan.vip(1)];
        net.control::<LoadBalancerNode, _>(lb, move |l, _| {
            l.vips = lb_vips;
        })
        .unwrap();

        #[derive(Debug)]
        struct SecondVipSyn {
            lb: NodeId,
        }
        impl Node<Packet> for SecondVipSyn {
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                let plan = AddressPlan::default();
                let syn = PacketBuilder::tcp(plan.client_addr(0), plan.vip(1))
                    .ports(44_000, 80)
                    .flags(TcpFlags::SYN)
                    .build();
                ctx.send(self.lb, syn);
            }
            fn on_message(&mut self, _p: Packet, _f: NodeId, _c: &mut Context<'_, Packet>) {}
        }
        net.add_node(SynSource { lb, port: 43_500 });
        net.add_node(SecondVipSyn { lb });
        net.run_until(RunUntil::Drained);
        let lb_node: LoadBalancerNode = net.take_node(lb).unwrap();
        assert_eq!(lb_node.stats().new_flows, 2);
        assert_eq!(lb_node.stats().flows_learned, 2);
        assert_eq!(lb_node.vips().len(), 2);
        // Both flows (one per VIP) are live in the same flow table.
        assert_eq!(lb_node.flow_table_len(), 2);
    }

    #[test]
    fn unrelated_destination_is_forwarded() {
        let plan = AddressPlan::default();
        let (mut net, client, lb, _servers) =
            build_cluster(2, PolicyConfig::Static { threshold: 4 }, 2);

        #[derive(Debug)]
        struct StraySource {
            lb: NodeId,
        }
        impl Node<Packet> for StraySource {
            fn on_start(&mut self, ctx: &mut Context<'_, Packet>) {
                let plan = AddressPlan::default();
                // A packet addressed directly to the client, transiting the LB.
                let stray = PacketBuilder::tcp(plan.server_addr(ServerId(0)), plan.client_addr(0))
                    .ports(80, 43_000)
                    .flags(TcpFlags::ACK)
                    .build();
                ctx.send(self.lb, stray);
            }
            fn on_message(&mut self, _p: Packet, _f: NodeId, _c: &mut Context<'_, Packet>) {}
        }
        net.add_node(StraySource { lb });
        net.run_until(RunUntil::Drained);
        let lb_node: LoadBalancerNode = net.take_node(lb).unwrap();
        assert_eq!(lb_node.stats().forwarded, 1);
        let sink: Sink = net.take_node(client).unwrap();
        assert_eq!(sink.received.len(), 1);
        let _ = plan;
    }
}
