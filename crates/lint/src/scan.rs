//! Workspace discovery and file collection.
//!
//! The default scan covers the shipping source of every member crate —
//! the root facade's `src/` plus each `crates/*/src/` tree.  Vendored
//! external stand-ins under `vendor/` mirror upstream crate APIs and are
//! excluded; `tests/`, `benches/` and `examples/` are excluded because
//! they deliberately hold unordered reference models, wall-clock bench
//! harnesses and `unwrap`-heavy assertions (the same reasoning the rules
//! apply to `#[cfg(test)]` modules inside `src/`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{lint_source, Finding, LintConfig};

/// Finds the workspace root by walking up from `start` until a directory
/// holding a `Cargo.toml` with a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every `.rs` file under `dir`, recursively, in sorted order —
/// the lint's own output must be deterministic, so directory iteration
/// order (which the OS does not guarantee) is never observed.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The workspace-relative, `/`-separated label used for rule scoping and
/// reports.
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Lints the given files or directories (directories are walked
/// recursively), scoping rule paths relative to `root`.
pub fn lint_paths(root: &Path, paths: &[PathBuf], config: &LintConfig) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_rs_files(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    let mut findings = Vec::new();
    for file in &files {
        let source = fs::read_to_string(file)?;
        let label = relative_label(root, file);
        findings.extend(lint_source(&label, &source, config));
    }
    Ok(findings)
}

/// Lints the default scan set of the workspace rooted at `root`: `src/`
/// plus every `crates/*/src/` tree.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> io::Result<Vec<Finding>> {
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    let existing: Vec<PathBuf> = roots.into_iter().filter(|p| p.is_dir()).collect();
    lint_paths(root, &existing, config)
}
