//! Token-pattern lint rules and the per-file analysis driver.
//!
//! Every rule here guards one of the workspace's structural invariants:
//!
//! * **Determinism** (`unordered-iter`, `ambient-time`, `ambient-rand`,
//!   `thread-spawn`): simulation outputs must be byte-identical across
//!   `SerialStep`/`Batched`/`Sharded{n}` and across machines, so no code
//!   may observe `HashMap`/`HashSet` iteration order, wall-clock time,
//!   ambient randomness, or spawn threads outside the sanctioned
//!   sharding/sweep modules.
//! * **Serde byte-stability** (`serde-no-skip`): a `#[serde(default)]`
//!   field without a paired `skip_serializing_if` re-serializes its
//!   default into every artifact, silently changing committed JSON bytes
//!   the moment the axis is introduced.
//! * **Panic hygiene** (`panic-hygiene`): `unwrap`/`expect`/`panic!` in
//!   the hot-path crates (`core`, `sim`, `net`) must each be justified.
//!
//! A finding is suppressed only by an inline directive on the same line or
//! the line directly above it (line comments only):
//!
//! ```text
//! // srlb-lint: allow(unordered-iter) -- equality is order-independent
//! ```
//!
//! The justification after `--` is mandatory, and an allow that matches no
//! finding is itself an error (`unused-allow`), so stale suppressions
//! cannot accumulate.

use std::collections::BTreeSet;

use serde::Serialize;

use crate::lexer::{lex, Token, TokenKind};

/// Identifiers of the lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a `HashMap`/`HashSet` in nondeterministic order.
    UnorderedIter,
    /// Ambient wall-clock time (`Instant::now`, `SystemTime::now`).
    AmbientTime,
    /// Ambient randomness (`thread_rng`, `from_entropy`, `OsRng`).
    AmbientRand,
    /// `std::thread::{spawn, scope, Builder}` outside the sanctioned
    /// sharding/sweep modules.
    ThreadSpawn,
    /// `#[serde(default)]` field without a paired `skip_serializing_if`.
    SerdeNoSkip,
    /// `unwrap`/`expect`/`panic!` in a hot-path crate.
    PanicHygiene,
    /// An allow directive that suppressed nothing.
    UnusedAllow,
    /// A malformed allow directive (bad grammar, unknown rule, or missing
    /// justification).
    BadDirective,
}

impl Serialize for Rule {
    /// Serializes as the stable kebab-case rule id.
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(serde::Value::Str(self.id().to_string()))
    }
}

impl Rule {
    /// The stable string id used in directives and reports.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::AmbientTime => "ambient-time",
            Rule::AmbientRand => "ambient-rand",
            Rule::ThreadSpawn => "thread-spawn",
            Rule::SerdeNoSkip => "serde-no-skip",
            Rule::PanicHygiene => "panic-hygiene",
            Rule::UnusedAllow => "unused-allow",
            Rule::BadDirective => "bad-directive",
        }
    }

    /// The rules an allow directive may name (the meta rules about
    /// directives themselves are not suppressible).
    pub fn allowable() -> &'static [Rule] {
        &[
            Rule::UnorderedIter,
            Rule::AmbientTime,
            Rule::AmbientRand,
            Rule::ThreadSpawn,
            Rule::SerdeNoSkip,
            Rule::PanicHygiene,
        ]
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::allowable().iter().copied().find(|r| r.id() == id)
    }
}

/// One lint finding.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// The rule that fired.
    pub rule: Rule,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable description of the hazard.
    pub message: String,
}

/// Scoping configuration: which paths each path-sensitive rule applies to.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes the `panic-hygiene` rule applies to.
    pub panic_scope: Vec<String>,
    /// Exact relative paths where `thread-spawn` is sanctioned (the
    /// sharded event core and the experiment sweep pool).
    pub sanctioned_threads: Vec<String>,
}

impl LintConfig {
    /// The workspace policy: panic hygiene gates the hot-path crates, and
    /// threads may only be spawned by the sharded event core and the
    /// experiment sweep pool.
    pub fn workspace() -> Self {
        LintConfig {
            panic_scope: vec![
                "crates/core/src".to_string(),
                "crates/sim/src".to_string(),
                "crates/net/src".to_string(),
            ],
            sanctioned_threads: vec![
                "crates/sim/src/pool.rs".to_string(),
                "crates/bench/src/parallel.rs".to_string(),
            ],
        }
    }

    /// Every rule applies to every path — used by the fixture self-tests.
    pub fn strict() -> Self {
        LintConfig {
            panic_scope: vec![String::new()],
            sanctioned_threads: Vec::new(),
        }
    }

    fn panics_in_scope(&self, file: &str) -> bool {
        self.panic_scope
            .iter()
            .any(|p| file.starts_with(p.as_str()))
    }

    fn threads_sanctioned(&self, file: &str) -> bool {
        self.sanctioned_threads
            .iter()
            .any(|p| file.ends_with(p.as_str()))
    }
}

/// A parsed `srlb-lint: allow(...)` directive.
struct Directive {
    rule: Rule,
    /// Line the directive suppresses findings on.
    target_line: u32,
    /// Line the directive itself sits on (for `unused-allow` reports).
    own_line: u32,
    used: bool,
}

/// Lints one file's source text.  `file` is the workspace-relative path
/// used for scoping and reporting (always with `/` separators).
pub fn lint_source(file: &str, source: &str, config: &LintConfig) -> Vec<Finding> {
    let tokens = lex(source);
    let code: Vec<Token> =
        strip_test_items(tokens.iter().filter(|t| !t.is_comment()).cloned().collect());

    let mut findings = Vec::new();
    let mut directives = parse_directives(file, &tokens, &code, &mut findings);

    let mut raw = Vec::new();
    unordered_iter(file, &code, &mut raw);
    ambient_time(file, &code, &mut raw);
    ambient_rand(file, &code, &mut raw);
    if !config.threads_sanctioned(file) {
        thread_spawn(file, &code, &mut raw);
    }
    serde_no_skip(file, &code, &mut raw);
    if config.panics_in_scope(file) {
        panic_hygiene(file, &code, &mut raw);
    }

    for finding in raw {
        let allowed = directives
            .iter_mut()
            .find(|d| d.rule == finding.rule && d.target_line == finding.line);
        match allowed {
            Some(d) => d.used = true,
            None => findings.push(finding),
        }
    }
    for d in &directives {
        if !d.used {
            findings.push(Finding {
                file: file.to_string(),
                rule: Rule::UnusedAllow,
                line: d.own_line,
                col: 1,
                message: format!(
                    "allow({}) suppresses nothing on line {}; remove the stale directive",
                    d.rule.id(),
                    d.target_line
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// Extracts allow directives from line comments.  A directive trailing
/// code applies to its own line; a directive alone on its line applies to
/// the next line carrying code.  Malformed directives become
/// `bad-directive` findings.
fn parse_directives(
    file: &str,
    tokens: &[Token],
    code: &[Token],
    findings: &mut Vec<Finding>,
) -> Vec<Directive> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("srlb-lint:") else {
            continue;
        };
        let mut bad = |message: String| {
            findings.push(Finding {
                file: file.to_string(),
                rule: Rule::BadDirective,
                line: t.line,
                col: t.col,
                message,
            });
        };
        let rest = rest.trim();
        let Some(args) = rest.strip_prefix("allow(") else {
            bad(format!(
                "malformed directive `{body}`: expected `allow(<rule>) -- <justification>`"
            ));
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("malformed directive: missing `)` after the rule name".to_string());
            continue;
        };
        let rule_id = args[..close].trim();
        let Some(rule) = Rule::from_id(rule_id) else {
            bad(format!(
                "unknown rule `{rule_id}`; expected one of {}",
                Rule::allowable()
                    .iter()
                    .map(|r| r.id())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            continue;
        };
        let tail = args[close + 1..].trim();
        let Some(justification) = tail.strip_prefix("--") else {
            bad(format!(
                "allow({rule_id}) is missing its mandatory `-- <justification>`"
            ));
            continue;
        };
        if justification.trim().is_empty() {
            bad(format!(
                "allow({rule_id}) has an empty justification after `--`"
            ));
            continue;
        }
        // Trailing directive (code earlier on the same line) covers its own
        // line; a standalone comment covers the next line that holds code.
        let trailing = code.iter().any(|c| c.line == t.line && c.col < t.col);
        let target_line = if trailing {
            t.line
        } else {
            code.iter()
                .map(|c| c.line)
                .filter(|&l| l > t.line)
                .min()
                .unwrap_or(t.line)
        };
        out.push(Directive {
            rule,
            target_line,
            own_line: t.line,
            used: false,
        });
    }
    out
}

/// Removes tokens inside `#[cfg(test)]`- or `#[test]`-gated items, so the
/// determinism rules only see shipping code (tests deliberately hold
/// unordered reference models and panic on violated expectations).
fn strip_test_items(code: Vec<Token>) -> Vec<Token> {
    let mut skip = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_bracket(&code, i + 1) else {
            break;
        };
        if !attr_is_test_gate(&code[i + 2..attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip the gating attribute, any further attributes, and the item
        // they decorate (to its closing `}` or terminating `;`).
        let mut j = attr_end + 1;
        while j < code.len()
            && code[j].is_punct('#')
            && code.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match matching_bracket(&code, j + 1) {
                Some(end) => j = end + 1,
                None => break,
            }
        }
        let mut depth = 0usize;
        while j < code.len() {
            if code[j].is_punct('{') {
                depth += 1;
            } else if code[j].is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            } else if code[j].is_punct(';') && depth == 0 {
                break;
            }
            j += 1;
        }
        for s in skip.iter_mut().take((j + 1).min(code.len())).skip(i) {
            *s = true;
        }
        i = j + 1;
    }
    code.into_iter()
        .zip(skip)
        .filter(|(_, s)| !s)
        .map(|(t, _)| t)
        .collect()
}

/// True when the attribute body (tokens between `[` and `]`) gates the
/// item to test builds: `cfg(test)` or plain `test`.
fn attr_is_test_gate(body: &[Token]) -> bool {
    if body.len() == 1 && body[0].is_ident("test") {
        return true;
    }
    body.len() >= 4
        && body[0].is_ident("cfg")
        && body[1].is_punct('(')
        && body[2].is_ident("test")
        && body[3].is_punct(')')
}

/// Index of the `]` matching the `[` at `open`, tracking nesting.
fn matching_bracket(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Methods whose results depend on a hash map's internal ordering.
const UNORDERED_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn unordered_iter(file: &str, code: &[Token], out: &mut Vec<Finding>) {
    let map_idents = collect_map_idents(code);
    if map_idents.is_empty() {
        return;
    }
    let mut flagged_lines = BTreeSet::new();
    // Form 1: `name.iter()` / `self.name.drain()` — an unordered method
    // called with a map-typed identifier as the receiver.
    for i in 2..code.len() {
        if code[i].kind == TokenKind::Ident
            && UNORDERED_METHODS.contains(&code[i].text.as_str())
            && code.get(i + 1).is_some_and(|t| t.is_punct('('))
            && code[i - 1].is_punct('.')
            && code[i - 2].kind == TokenKind::Ident
            && map_idents.contains(&code[i - 2].text)
        {
            flagged_lines.insert(code[i].line);
            out.push(Finding {
                file: file.to_string(),
                rule: Rule::UnorderedIter,
                line: code[i].line,
                col: code[i].col,
                message: format!(
                    "`{}.{}()` iterates a HashMap/HashSet in nondeterministic order; \
                     use an ordered collection or sort the results",
                    code[i - 2].text,
                    code[i].text
                ),
            });
        }
    }
    // Form 2: `for x in &name` — direct iteration of the map itself.
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("for") {
            i += 1;
            continue;
        }
        // The loop header runs to the first `{` outside parentheses.
        let mut j = i + 1;
        let mut paren = 0usize;
        let mut last_ident: Option<usize> = None;
        while j < code.len() {
            let t = &code[j];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren = paren.saturating_sub(1);
            } else if t.is_punct('{') && paren == 0 {
                break;
            } else if t.kind == TokenKind::Ident {
                last_ident = Some(j);
            }
            j += 1;
        }
        if let Some(k) = last_ident {
            if map_idents.contains(&code[k].text) && !flagged_lines.contains(&code[k].line) {
                out.push(Finding {
                    file: file.to_string(),
                    rule: Rule::UnorderedIter,
                    line: code[k].line,
                    col: code[k].col,
                    message: format!(
                        "`for … in {}` iterates a HashMap/HashSet in nondeterministic \
                         order; use an ordered collection or sort first",
                        code[k].text
                    ),
                });
            }
        }
        i = j + 1;
    }
}

/// Identifiers (locals, parameters, fields) declared with a `HashMap` or
/// `HashSet` type, collected from type ascriptions (`name: HashMap<…>`,
/// with optional path, reference and `mut` prefixes) and constructor
/// assignments (`name = HashMap::new()`).
fn collect_map_idents(code: &[Token]) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for i in 0..code.len() {
        if !(code[i].is_ident("HashMap") || code[i].is_ident("HashSet")) {
            continue;
        }
        // Constructor assignment: `name = HashMap::…`.
        if i >= 2 && code[i - 1].is_punct('=') && code[i - 2].kind == TokenKind::Ident {
            idents.insert(code[i - 2].text.clone());
            continue;
        }
        // Type ascription: strip `std :: collections ::`-style path
        // segments, then `&`/`mut`/lifetime prefixes, then expect
        // `name :` (a single colon).
        let mut j = i;
        while j >= 2 && code[j - 1].is_punct(':') && code[j - 2].is_punct(':') {
            j -= 2;
            if j >= 1 && code[j - 1].kind == TokenKind::Ident {
                j -= 1;
            }
        }
        while j >= 1
            && (code[j - 1].is_punct('&')
                || code[j - 1].is_ident("mut")
                || code[j - 1].kind == TokenKind::Lifetime)
        {
            j -= 1;
        }
        // Constructor assignment through a full path:
        // `name = std::collections::HashMap::new()`.
        if j >= 2 && code[j - 1].is_punct('=') && code[j - 2].kind == TokenKind::Ident {
            idents.insert(code[j - 2].text.clone());
            continue;
        }
        if j >= 2
            && code[j - 1].is_punct(':')
            && !(j >= 3 && code[j - 2].is_punct(':'))
            && code[j - 2].kind == TokenKind::Ident
        {
            idents.insert(code[j - 2].text.clone());
        }
    }
    idents
}

fn ambient_time(file: &str, code: &[Token], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if (code[i].is_ident("Instant") || code[i].is_ident("SystemTime"))
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(Finding {
                file: file.to_string(),
                rule: Rule::AmbientTime,
                line: code[i].line,
                col: code[i].col,
                message: format!(
                    "`{}::now()` reads the wall clock; simulated code must use \
                     `SimTime` so runs replay identically",
                    code[i].text
                ),
            });
        }
    }
}

fn ambient_rand(file: &str, code: &[Token], out: &mut Vec<Finding>) {
    for t in code {
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("OsRng") {
            out.push(Finding {
                file: file.to_string(),
                rule: Rule::AmbientRand,
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` draws ambient randomness; derive every stream from the \
                     experiment seed instead",
                    t.text
                ),
            });
        }
    }
}

fn thread_spawn(file: &str, code: &[Token], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if code[i].is_ident("thread")
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| {
                t.is_ident("spawn") || t.is_ident("scope") || t.is_ident("Builder")
            })
        {
            out.push(Finding {
                file: file.to_string(),
                rule: Rule::ThreadSpawn,
                line: code[i].line,
                col: code[i].col,
                message: format!(
                    "`thread::{}` outside the sanctioned sharding/sweep modules; \
                     parallelism must stay behind the deterministic frontends",
                    code[i + 3].text
                ),
            });
        }
    }
}

/// A parsed attribute: token span and, when it is a `#[serde(…)]` attr,
/// the argument tokens.
struct Attr {
    start: usize,
    end: usize,
    serde_args: Option<(usize, usize)>,
}

fn serde_no_skip(file: &str, code: &[Token], out: &mut Vec<Finding>) {
    // Collect every attribute with its span.
    let mut attrs: Vec<Attr> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let Some(end) = matching_bracket(code, i + 1) else {
                break;
            };
            let serde_args = if code.get(i + 2).is_some_and(|t| t.is_ident("serde"))
                && code.get(i + 3).is_some_and(|t| t.is_punct('('))
            {
                Some((i + 4, end - 1)) // tokens strictly inside serde(…)
            } else {
                None
            };
            attrs.push(Attr {
                start: i,
                end,
                serde_args,
            });
            i = end + 1;
        } else {
            i += 1;
        }
    }
    // Group attributes decorating the same item (token-adjacent spans).
    let mut g = 0;
    while g < attrs.len() {
        let mut h = g;
        while h + 1 < attrs.len() && attrs[h + 1].start == attrs[h].end + 1 {
            h += 1;
        }
        let group = &attrs[g..=h];
        // The decorated item follows the last attribute; fields look like
        // `[pub [(…)]] name :` while containers start with `struct`/`enum`.
        let mut j = group[group.len() - 1].end + 1;
        if code.get(j).is_some_and(|t| t.is_ident("pub")) {
            j += 1;
            if code.get(j).is_some_and(|t| t.is_punct('(')) {
                while j < code.len() && !code[j].is_punct(')') {
                    j += 1;
                }
                j += 1;
            }
        }
        let is_field = code.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
            && !code[j].is_ident("struct")
            && !code[j].is_ident("enum")
            && !code[j].is_ident("fn")
            && code.get(j + 1).is_some_and(|t| t.is_punct(':'));
        if is_field {
            let mut default_at: Option<&Token> = None;
            let mut has_skip = false;
            for a in group {
                let Some((lo, hi)) = a.serde_args else {
                    continue;
                };
                let mut depth = 0usize;
                for k in lo..=hi {
                    let t = &code[k];
                    if t.is_punct('(') {
                        depth += 1;
                    } else if t.is_punct(')') {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && t.kind == TokenKind::Ident {
                        if t.is_ident("default")
                            && code.get(k + 1).is_some_and(|n| {
                                n.is_punct(',')
                                    || n.is_punct(')')
                                    || n.is_punct(']')
                                    || n.is_punct('=')
                            })
                        {
                            default_at.get_or_insert(t);
                        } else if t.is_ident("skip_serializing_if")
                            || t.is_ident("skip_serializing")
                        {
                            has_skip = true;
                        }
                    }
                }
            }
            if let Some(d) = default_at {
                if !has_skip {
                    out.push(Finding {
                        file: file.to_string(),
                        rule: Rule::SerdeNoSkip,
                        line: d.line,
                        col: d.col,
                        message: format!(
                            "field `{}` has #[serde(default)] without skip_serializing_if; \
                             the default will re-serialize and change committed artifact bytes",
                            code[j].text
                        ),
                    });
                }
            }
        }
        g = h + 1;
    }
}

fn panic_hygiene(file: &str, code: &[Token], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        let t = &code[i];
        let method_call = (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('));
        let macro_call = t.is_ident("panic") && code.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if method_call || macro_call {
            let what = if macro_call {
                "panic!".to_string()
            } else {
                format!(".{}()", t.text)
            };
            out.push(Finding {
                file: file.to_string(),
                rule: Rule::PanicHygiene,
                line: t.line,
                col: t.col,
                message: format!(
                    "`{what}` in a hot-path crate; return an error or justify the \
                     invariant with an allow directive"
                ),
            });
        }
    }
}
