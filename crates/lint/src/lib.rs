//! `srlb-lint`: the workspace determinism & hygiene analyzer.
//!
//! The whole value of this SRLB reproduction rests on one invariant:
//! every run is byte-identical across execution modes, and every
//! committed JSON artifact is byte-stable across PRs.  The proptest
//! replays and CI byte-diffs enforce that invariant *dynamically*; this
//! crate rejects the known hazard classes *statically*, at the source
//! level, so a latent nondeterminism bug (such as the randomized
//! `HashMap` drain order PR 6 caught in `ClientNode::into_collector`)
//! cannot sit in the tree waiting for a replay to happen to catch it.
//!
//! The analyzer is a small hand-rolled lexer ([`lexer`]) plus
//! token-pattern rules ([`rules`]) — no registry access is available in
//! the build container, so it depends on nothing beyond the vendored
//! serde stand-ins (for `--format json`).  See the repository README's
//! "Static analysis" section for the rule catalogue and the allow
//! directive grammar.

pub mod lexer;
pub mod rules;
pub mod scan;

pub use rules::{lint_source, Finding, LintConfig, Rule};
pub use scan::{lint_paths, lint_workspace};
