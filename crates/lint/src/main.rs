//! The `srlb-lint` command-line interface.
//!
//! ```text
//! srlb-lint [--format human|json] [--root DIR] [PATH…]
//! ```
//!
//! With no paths, lints the workspace's default scan set (the root
//! facade's `src/` and every `crates/*/src/` tree) under the workspace
//! scoping policy.  Explicit paths (files or directories) are linted
//! instead when given.  Exit code 0 means no findings, 1 means findings,
//! 2 means a usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use srlb_lint::{lint_paths, lint_workspace, Finding, LintConfig};

/// Report serialized by `--format json`.
#[derive(serde::Serialize)]
struct JsonReport {
    /// Schema version of this report.
    schema: u32,
    /// Number of findings (equals `findings.len()`).
    total: usize,
    /// Every finding, sorted by file, line and column.
    findings: Vec<Finding>,
}

fn main() -> ExitCode {
    let mut format_json = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("human") => format_json = false,
                other => {
                    eprintln!("srlb-lint: --format expects `human` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("srlb-lint: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: srlb-lint [--format human|json] [--root DIR] [PATH...]");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("srlb-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match srlb_lint::scan::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("srlb-lint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let config = LintConfig::workspace();
    let result = if paths.is_empty() {
        lint_workspace(&root, &config)
    } else {
        lint_paths(&root, &paths, &config)
    };
    let mut findings = match result {
        Ok(f) => f,
        Err(e) => {
            eprintln!("srlb-lint: {e}");
            return ExitCode::from(2);
        }
    };
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });

    if format_json {
        let report = JsonReport {
            schema: 1,
            total: findings.len(),
            findings: findings.clone(),
        };
        match serde_json::to_string(&report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("srlb-lint: serialization failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for f in &findings {
            println!(
                "{}:{}:{}: [{}] {}",
                f.file,
                f.line,
                f.col,
                f.rule.id(),
                f.message
            );
        }
        if findings.is_empty() {
            println!("srlb-lint: clean — no unsuppressed findings");
        } else {
            println!("srlb-lint: {} finding(s)", findings.len());
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
