//! A small hand-rolled Rust lexer.
//!
//! `srlb-lint` runs in a container with no registry access, so it cannot
//! lean on `syn` or `proc-macro2`; this module tokenizes Rust source well
//! enough for token-pattern linting.  The cases that matter for
//! correctness — and that a naive regex scan gets wrong — are handled
//! explicitly:
//!
//! * line comments and **nested** block comments (`/* /* */ */`),
//! * string literals with escapes, raw strings `r"…"` / `r#"…"#` with any
//!   number of hashes, byte strings `b"…"` / `br#"…"#`,
//! * char literals (`'a'`, `'\n'`, `'\u{1F600}'`, `b'x'`) versus
//!   lifetimes (`'a`, `'static`),
//! * raw identifiers (`r#type`), which must not be confused with raw
//!   strings.
//!
//! Comments are emitted as tokens (the allow-directive scanner needs
//! them); rule matching filters them out.

/// The coarse classification of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including the name of a raw identifier).
    Ident,
    /// A numeric literal.
    Number,
    /// A string or byte-string literal (raw or not), quotes included.
    Str,
    /// A character or byte-character literal.
    Char,
    /// A lifetime such as `'a` (leading quote included in the text).
    Lifetime,
    /// A single punctuation character.
    Punct,
    /// A `//` line comment, text included, newline excluded.
    LineComment,
    /// A `/* … */` block comment, delimiters included.
    BlockComment,
}

/// One lexed token with its position in the source file.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

impl Token {
    /// True for `Ident` tokens whose text equals `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True for `Punct` tokens whose single character equals `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True for comment tokens of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `source`, returning every token including comments.
///
/// The lexer is intentionally forgiving: malformed input (an unterminated
/// string, a stray quote) never panics, it simply produces best-effort
/// tokens to the end of the file.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string(String::new(), line, col),
                '\'' => self.quote(line, col),
                'r' | 'b' if self.raw_or_byte_literal(line, col) => {}
                c if is_ident_start(c) => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    let c = self.bump().unwrap_or(' ');
                    self.push(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line, col);
    }

    /// A plain (escaped) string literal; `prefix` carries any `b` already
    /// consumed.  The opening quote has not been consumed yet.
    fn string(&mut self, prefix: String, line: u32, col: u32) {
        let mut text = prefix;
        text.push(self.bump().unwrap_or('"')); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                text.push(c);
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Handles `r`/`b` heads that may start a raw string (`r"…"`,
    /// `r#"…"#`), a byte string (`b"…"`, `br#"…"#`), a byte char (`b'x'`)
    /// or a raw identifier (`r#type`).  Returns `false` when the head is
    /// just the start of an ordinary identifier, consuming nothing.
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let c0 = self.peek(0).unwrap_or(' ');
        // Determine the literal head: r, b, br or rb (rb is not valid Rust
        // but harmless to accept).
        let mut head_len = 1;
        let mut raw = c0 == 'r';
        let mut byte = c0 == 'b';
        if let Some(c1) = self.peek(1) {
            if (c0 == 'b' && c1 == 'r') || (c0 == 'r' && c1 == 'b') {
                head_len = 2;
                raw = true;
                byte = true;
            }
        }
        let _ = byte;
        // Count hashes after the head.
        let mut hashes = 0usize;
        while self.peek(head_len + hashes) == Some('#') {
            hashes += 1;
        }
        let after = self.peek(head_len + hashes);
        if raw && after == Some('"') {
            // Raw (byte) string: consume until `"` followed by `hashes`
            // hashes.
            let mut text = String::new();
            for _ in 0..head_len + hashes + 1 {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            while let Some(c) = self.peek(0) {
                if c == '"' {
                    let mut matched = true;
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some('#') {
                            matched = false;
                            break;
                        }
                    }
                    if matched {
                        for _ in 0..hashes + 1 {
                            if let Some(c) = self.bump() {
                                text.push(c);
                            }
                        }
                        break;
                    }
                }
                text.push(c);
                self.bump();
            }
            self.push(TokenKind::Str, text, line, col);
            return true;
        }
        if c0 == 'r' && hashes == 1 && after.is_some_and(is_ident_start) {
            // Raw identifier `r#ident`: emit the bare name as an Ident.
            self.bump(); // r
            self.bump(); // #
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Ident, text, line, col);
            return true;
        }
        if c0 == 'b' && hashes == 0 {
            if after == Some('"') {
                // b"…": escaped byte string.
                self.bump(); // b
                self.string("b".to_string(), line, col);
                return true;
            }
            if after == Some('\'') {
                // b'x' byte char.
                self.bump(); // b
                self.char_literal("b".to_string(), line, col);
                return true;
            }
        }
        false
    }

    /// A single quote: either a char literal or a lifetime.
    ///
    /// Disambiguation: `'\…` is always a char literal; `'c'` (quote two
    /// characters later) is a char literal; otherwise `'ident` is a
    /// lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        let next = self.peek(1);
        if next == Some('\\') || (next.is_some() && self.peek(2) == Some('\'')) {
            self.char_literal(String::new(), line, col);
            return;
        }
        if next.is_some_and(is_ident_start) {
            // Lifetime: 'ident with no closing quote.
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\'')); // '
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line, col);
            return;
        }
        // Not a valid char or lifetime start (e.g. `''`): emit the quote as
        // punctuation and move on.
        self.bump();
        self.push(TokenKind::Punct, "'".to_string(), line, col);
    }

    /// A char literal; the opening quote has not been consumed yet and
    /// `prefix` carries any `b` already consumed.
    fn char_literal(&mut self, prefix: String, line: u32, col: u32) {
        let mut text = prefix;
        text.push(self.bump().unwrap_or('\'')); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '\'' {
                text.push(c);
                self.bump();
                break;
            } else if c == '\n' {
                break; // malformed; don't swallow the rest of the file
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Char, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    /// A numeric literal.  Good enough for linting: digits (any radix,
    /// suffixes, underscores), an optional fraction when a digit follows
    /// the dot (so `0..5` is not swallowed) and `e`/`E` exponents with an
    /// optional sign (`1e-6`).
    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let consume_digits = |lx: &mut Self, text: &mut String| {
            while let Some(c) = lx.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    if (c == 'e' || c == 'E')
                        && matches!(lx.peek(1), Some('+') | Some('-'))
                        && lx.peek(2).is_some_and(|d| d.is_ascii_digit())
                    {
                        text.push(c);
                        lx.bump();
                        if let Some(sign) = lx.bump() {
                            text.push(sign);
                        }
                        continue;
                    }
                    text.push(c);
                    lx.bump();
                } else {
                    break;
                }
            }
        };
        consume_digits(self, &mut text);
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            consume_digits(self, &mut text);
        }
        self.push(TokenKind::Number, text, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}
