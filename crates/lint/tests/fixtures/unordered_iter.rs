//! Fixture: must trip exactly one `unordered-iter` finding.

pub fn sum_values(m: &std::collections::HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in m.iter() {
        total += v;
    }
    total
}
