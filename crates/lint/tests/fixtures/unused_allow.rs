//! Fixture: must trip exactly one `unused-allow` finding.

// srlb-lint: allow(ambient-time) -- nothing on the next line reads the clock
pub fn quiet() -> u32 {
    41
}
