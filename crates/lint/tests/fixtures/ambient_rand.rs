//! Fixture: must trip exactly one `ambient-rand` finding.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rand::Rng::next_u64(&mut rng)
}
