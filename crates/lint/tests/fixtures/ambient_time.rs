//! Fixture: must trip exactly one `ambient-time` finding.

pub fn elapsed_hint() -> std::time::Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
