//! Fixture: must trip exactly one `panic-hygiene` finding.

pub fn first(values: &[u32]) -> u32 {
    values.first().copied().unwrap()
}
