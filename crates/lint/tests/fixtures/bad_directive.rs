//! Fixture: must trip exactly one `bad-directive` finding.

// srlb-lint: allow(unordered-iter)
pub fn quiet() -> u32 {
    42
}
