//! Fixture: must trip exactly one `thread-spawn` finding.

pub fn run_in_background() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
