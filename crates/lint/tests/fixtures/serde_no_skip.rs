//! Fixture: must trip exactly one `serde-no-skip` finding.

#[derive(serde::Serialize, serde::Deserialize)]
pub struct RetrySpec {
    /// Proper pairing: default AND skip — must NOT be flagged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub budget: Option<u32>,
    /// Missing pairing: the default re-serializes into every artifact.
    #[serde(default)]
    pub attempts: u32,
}
