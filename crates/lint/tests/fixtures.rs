//! Self-test: every seeded fixture trips exactly its intended rule.
//!
//! Each file under `tests/fixtures/` is named after a rule id (with `_`
//! for `-`) and must produce **exactly one** finding of **exactly that
//! rule** under the strict config (every path-sensitive rule armed).  The
//! meta-test also checks coverage both ways: every rule the analyzer
//! knows has a fixture, and no stray fixture file exists without a rule.

use std::collections::BTreeMap;
use std::path::PathBuf;

use srlb_lint::{lint_source, LintConfig, Rule};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// All rules the analyzer can report: the six allowable rules plus the
/// two directive meta-rules.
fn all_rules() -> Vec<Rule> {
    let mut rules = Rule::allowable().to_vec();
    rules.push(Rule::UnusedAllow);
    rules.push(Rule::BadDirective);
    rules
}

/// Reads the fixture set as `rule-id -> source text`, failing on any file
/// whose stem does not name a rule.
fn load_fixtures() -> BTreeMap<String, String> {
    let dir = fixtures_dir();
    let mut out = BTreeMap::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        assert_eq!(
            path.extension().and_then(|e| e.to_str()),
            Some("rs"),
            "stray non-Rust file in fixtures: {}",
            path.display()
        );
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 fixture name")
            .to_string();
        let rule_id = stem.replace('_', "-");
        assert!(
            all_rules().iter().any(|r| r.id() == rule_id),
            "fixture `{stem}.rs` does not correspond to any rule id"
        );
        let source = std::fs::read_to_string(&path).expect("fixture readable");
        out.insert(rule_id, source);
    }
    out
}

#[test]
fn every_rule_has_a_fixture_and_every_fixture_a_rule() {
    let fixtures = load_fixtures();
    let expected: Vec<&str> = all_rules().iter().map(|r| r.id()).collect();
    let actual: Vec<&str> = fixtures.keys().map(String::as_str).collect();
    let mut expected_sorted = expected.clone();
    expected_sorted.sort_unstable();
    assert_eq!(
        actual, expected_sorted,
        "fixture set must cover exactly the rule catalogue"
    );
}

#[test]
fn each_fixture_trips_exactly_its_rule() {
    let config = LintConfig::strict();
    for (rule_id, source) in load_fixtures() {
        let label = format!("tests/fixtures/{}.rs", rule_id.replace('-', "_"));
        let findings = lint_source(&label, &source, &config);
        assert_eq!(
            findings.len(),
            1,
            "fixture for `{rule_id}` must trip exactly one finding, got {findings:#?}"
        );
        assert_eq!(
            findings[0].rule.id(),
            rule_id,
            "fixture for `{rule_id}` tripped the wrong rule: {findings:#?}"
        );
    }
}

#[test]
fn fixtures_stay_silent_under_test_gating() {
    // Wrapping a hazard fixture in `#[cfg(test)] mod t { … }` silences it:
    // the determinism rules only see shipping code.
    let config = LintConfig::strict();
    for (rule_id, source) in load_fixtures() {
        if rule_id == "unused-allow" || rule_id == "bad-directive" {
            continue; // directive meta-rules fire regardless of gating
        }
        let gated = format!("#[cfg(test)]\nmod gated {{\n{source}\n}}\n");
        let findings = lint_source("tests/fixtures/gated.rs", &gated, &config);
        assert!(
            findings.is_empty(),
            "`{rule_id}` fixture should be silent under #[cfg(test)]: {findings:#?}"
        );
    }
}

#[test]
fn trailing_allow_suppresses_same_line() {
    let src = "pub fn f() -> std::time::Instant {\n    \
               std::time::Instant::now() // srlb-lint: allow(ambient-time) -- fixture\n}\n";
    let findings = lint_source("x.rs", src, &LintConfig::strict());
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn standalone_allow_suppresses_next_code_line() {
    let src = "pub fn f() -> std::time::Instant {\n    \
               // srlb-lint: allow(ambient-time) -- fixture\n    \
               std::time::Instant::now()\n}\n";
    let findings = lint_source("x.rs", src, &LintConfig::strict());
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn allow_of_wrong_rule_does_not_suppress() {
    let src = "pub fn f() -> std::time::Instant {\n    \
               std::time::Instant::now() // srlb-lint: allow(ambient-rand) -- wrong rule\n}\n";
    let findings = lint_source("x.rs", src, &LintConfig::strict());
    // The real finding survives AND the mismatched allow is unused.
    let mut ids: Vec<&str> = findings.iter().map(|f| f.rule.id()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec!["ambient-time", "unused-allow"], "{findings:#?}");
}

#[test]
fn directive_text_inside_a_string_is_inert() {
    // A directive-shaped string literal must neither suppress nor trip
    // bad-directive: directives live in line comments only.
    let src = "pub fn f() -> (&'static str, std::time::Instant) {\n    \
               (\"// srlb-lint: allow(ambient-time) -- in a string\", std::time::Instant::now())\n}\n";
    let findings = lint_source("x.rs", src, &LintConfig::strict());
    let ids: Vec<&str> = findings.iter().map(|f| f.rule.id()).collect();
    assert_eq!(ids, vec!["ambient-time"], "{findings:#?}");
}

#[test]
fn meta_rules_are_not_allowable() {
    for rule in [Rule::UnusedAllow, Rule::BadDirective] {
        assert!(
            !Rule::allowable().contains(&rule),
            "{} must not be suppressible",
            rule.id()
        );
    }
}

#[test]
fn workspace_config_scopes_rules_by_path() {
    let config = LintConfig::workspace();
    let panic_src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    // In a hot-path crate: flagged.
    assert_eq!(
        lint_source("crates/core/src/x.rs", panic_src, &config).len(),
        1
    );
    // Outside the panic scope (e.g. the bench crate): clean.
    assert!(lint_source("crates/bench/src/x.rs", panic_src, &config).is_empty());

    let spawn_src = "pub fn f() { std::thread::spawn(|| ()); }\n";
    // Sanctioned worker-pool module: clean; anywhere else — including the
    // sharded frontend, whose spawns moved into the pool — flagged.
    assert!(lint_source("crates/sim/src/pool.rs", spawn_src, &config).is_empty());
    assert_eq!(
        lint_source("crates/sim/src/shard.rs", spawn_src, &config).len(),
        1
    );
    assert_eq!(
        lint_source("crates/sim/src/core.rs", spawn_src, &config).len(),
        1
    );
}
