//! Edge-case coverage for the hand-rolled lexer.
//!
//! Every case here is one a naive regex scan gets wrong — and therefore a
//! way the lint could false-positive (flagging text inside a string) or
//! false-negative (missing code after a mis-lexed literal).

use srlb_lint::lexer::{lex, TokenKind};

/// The non-comment token texts, for compact structural assertions.
fn texts(source: &str) -> Vec<String> {
    lex(source)
        .into_iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.text)
        .collect()
}

fn kinds(source: &str) -> Vec<TokenKind> {
    lex(source).into_iter().map(|t| t.kind).collect()
}

#[test]
fn raw_string_with_hashes_is_one_token() {
    let src = r##"let s = r#"a "quoted" b"#;"##;
    let tokens = lex(src);
    let strs: Vec<_> = tokens.iter().filter(|t| t.kind == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].text, r##"r#"a "quoted" b"#"##);
    // The trailing `;` survives as punctuation — the lexer did not run off
    // the end chasing an unmatched quote.
    assert!(tokens.iter().any(|t| t.is_punct(';')));
}

#[test]
fn raw_string_with_two_hashes_swallows_single_hash_quote() {
    let src = r###"r##"contains "# inside"##"###;
    let tokens = lex(src);
    assert_eq!(tokens.len(), 1);
    assert_eq!(tokens[0].kind, TokenKind::Str);
    assert_eq!(tokens[0].text, src);
}

#[test]
fn hazard_inside_raw_string_is_not_an_ident() {
    // `Instant::now` inside a raw string must lex as string content, not
    // as identifier tokens the ambient-time rule could match.
    let src = r#"let doc = r"call Instant::now() here";"#;
    let idents: Vec<_> = lex(src)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect();
    assert_eq!(idents, vec!["let", "doc"]);
}

#[test]
fn byte_string_and_byte_char() {
    let tokens = lex(r#"let a = b"bytes"; let c = b'x';"#);
    let strs: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Str)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(strs, vec![r#"b"bytes""#]);
    let chars: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec!["b'x'"]);
}

#[test]
fn nested_block_comment_is_one_token() {
    let src = "/* outer /* inner */ still outer */ fn";
    let tokens = lex(src);
    assert_eq!(tokens.len(), 2);
    assert_eq!(tokens[0].kind, TokenKind::BlockComment);
    assert_eq!(tokens[0].text, "/* outer /* inner */ still outer */");
    assert!(tokens[1].is_ident("fn"));
}

#[test]
fn char_literal_vs_lifetime() {
    let tokens = lex("let c = 'a'; fn f<'a>(x: &'a str) -> &'static str { x }");
    let chars: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec!["'a'"]);
    let lifetimes: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
}

#[test]
fn escaped_char_literals() {
    for src in ["'\\n'", "'\\''", "'\\u{1F600}'"] {
        let tokens = lex(src);
        assert_eq!(tokens[0].kind, TokenKind::Char, "{src}");
        assert_eq!(tokens[0].text, src, "{src}");
    }
}

#[test]
fn raw_identifier_is_an_ident_not_a_string() {
    let tokens = lex("let r#type = 1;");
    assert!(tokens.iter().any(|t| t.is_ident("type")));
    assert!(tokens.iter().all(|t| t.kind != TokenKind::Str));
}

#[test]
fn plain_r_and_b_idents_are_not_literal_heads() {
    assert_eq!(texts("r + b"), vec!["r", "+", "b"]);
    assert_eq!(
        texts("rb_buffer.len()"),
        vec!["rb_buffer", ".", "len", "(", ")"]
    );
}

#[test]
fn number_with_exponent_and_range() {
    // `1.0e-6` is one number; `0..5` must not swallow the range dots.
    assert_eq!(texts("1.0e-6"), vec!["1.0e-6"]);
    assert_eq!(texts("0..5"), vec!["0", ".", ".", "5"]);
    assert_eq!(texts("1_000u64"), vec!["1_000u64"]);
    // `e` without a signed digit after it stays within the literal only
    // when alphanumeric continuation applies (`2e10` is one token).
    assert_eq!(texts("2e10"), vec!["2e10"]);
}

#[test]
fn method_call_on_float_is_not_a_fraction() {
    // `1.max(2)` — the dot starts a method call, not a decimal fraction.
    assert_eq!(texts("1.max(2)"), vec!["1", ".", "max", "(", "2", ")"]);
}

#[test]
fn line_and_column_tracking() {
    let tokens = lex("a\n  bb\ncc");
    assert_eq!(
        tokens
            .iter()
            .map(|t| (t.text.as_str(), t.line, t.col))
            .collect::<Vec<_>>(),
        vec![("a", 1, 1), ("bb", 2, 3), ("cc", 3, 1)]
    );
}

#[test]
fn comments_are_emitted_with_positions() {
    let tokens = lex("x // trailing note\n/* block */ y");
    assert_eq!(tokens[1].kind, TokenKind::LineComment);
    assert_eq!(tokens[1].text, "// trailing note");
    assert_eq!(tokens[1].line, 1);
    assert_eq!(tokens[2].kind, TokenKind::BlockComment);
    assert_eq!(tokens[2].line, 2);
}

#[test]
fn malformed_input_never_panics() {
    for src in [
        "\"unterminated",
        "r#\"unterminated raw",
        "/* unterminated comment",
        "'",
        "''",
        "b'",
        "let x = '",
    ] {
        let _ = lex(src); // must not panic
    }
}

#[test]
fn empty_and_whitespace_sources() {
    assert!(lex("").is_empty());
    assert!(lex("  \n\t \n").is_empty());
}

#[test]
fn kinds_roundtrip_smoke() {
    // A dense line touching every token class.
    let src = "fn f<'a>() { let s = r#\"x\"#; let c = 'y'; 1.5; /* b */ } // l";
    let ks = kinds(src);
    for expect in [
        TokenKind::Ident,
        TokenKind::Lifetime,
        TokenKind::Str,
        TokenKind::Char,
        TokenKind::Number,
        TokenKind::Punct,
        TokenKind::BlockComment,
        TokenKind::LineComment,
    ] {
        assert!(ks.contains(&expect), "missing {expect:?} in {ks:?}");
    }
}
