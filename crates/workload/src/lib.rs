//! # srlb-workload — traffic generation for the SRLB experiments
//!
//! The paper evaluates SRLB against two workloads:
//!
//! 1. **Poisson traffic** (Section V): a Poisson stream of queries to a
//!    CPU-bound PHP page whose service time is exponentially distributed
//!    with a mean of 100 ms — reproduced by [`PoissonWorkload`].
//! 2. **Wikipedia replay** (Section VI): 24 hours of real Wikipedia access
//!    traces replayed against MediaWiki replicas.  The original traces (10%
//!    of Wikipedia's 2007 traffic) and the MediaWiki/MySQL stack are not
//!    available here, so [`wikipedia::WikipediaWorkload`] generates a
//!    *synthetic* trace with the same load-shaping properties: a diurnal
//!    rate curve matching the paper's Figure 6, a static/wiki-page request
//!    mix, and heavy-tailed per-page service costs.  The substitution is
//!    documented in `DESIGN.md`.
//!
//! Both generators produce a time-ordered list of [`Request`]s that the
//! experiment driver in `srlb-core` feeds into the simulated cluster, and
//! both are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod poisson;
pub mod request;
pub mod service;
pub mod trace;
pub mod wikipedia;

pub use poisson::PoissonWorkload;
pub use request::Request;
pub use service::ServiceTime;
pub use trace::Trace;
pub use wikipedia::{DiurnalProfile, WikipediaWorkload};

/// Re-export of the request classification shared with `srlb-metrics`.
pub use srlb_metrics::RequestClass;
