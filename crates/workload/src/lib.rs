//! # srlb-workload — traffic generation for the SRLB experiments
//!
//! The paper evaluates SRLB against two workloads:
//!
//! 1. **Poisson traffic** (Section V): a Poisson stream of queries to a
//!    CPU-bound PHP page whose service time is exponentially distributed
//!    with a mean of 100 ms — reproduced by [`PoissonWorkload`].
//! 2. **Wikipedia replay** (Section VI): 24 hours of real Wikipedia access
//!    traces replayed against MediaWiki replicas.  The original traces (10%
//!    of Wikipedia's 2007 traffic) and the MediaWiki/MySQL stack are not
//!    available here, so [`wikipedia::WikipediaWorkload`] generates a
//!    *synthetic* trace with the same load-shaping properties: a diurnal
//!    rate curve matching the paper's Figure 6, a static/wiki-page request
//!    mix, and heavy-tailed per-page service costs.  The substitution is
//!    documented in `DESIGN.md`.
//!
//! Both generators are deterministic given a seed and produce a
//! time-ordered sequence of [`Request`]s.  Since the streaming refactor
//! the primary interface is the [`Workload`] trait ([`stream`] module):
//! the experiment driver in `srlb-core` *pulls* requests on demand, so a
//! 24-hour replay never has to be materialised in memory; the eager
//! `generate()` methods survive as compatibility shims that drain the
//! stream (property-tested byte-identical to the pre-refactor output in
//! `tests/proptest_stream.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod poisson;
pub mod request;
pub mod service;
pub mod stream;
pub mod trace;
pub mod wikipedia;

pub use poisson::PoissonWorkload;
pub use request::Request;
pub use service::ServiceTime;
pub use stream::{
    requests_into_stream, BoxedWorkload, PoissonStream, TraceStream, WikipediaStream, Workload,
};
pub use trace::Trace;
pub use wikipedia::{DiurnalProfile, WikipediaWorkload};

/// Re-export of the request classification shared with `srlb-metrics`.
pub use srlb_metrics::RequestClass;
