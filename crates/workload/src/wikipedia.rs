//! Synthetic Wikipedia-replay workload (substitute for the paper's trace).
//!
//! The paper replays 24 hours of real Wikipedia access traces (10% of all
//! 2007 Wikipedia traffic, English wiki only) against full MediaWiki
//! replicas.  Neither the trace archive nor the MediaWiki/MySQL/memcached
//! stack is available in this environment, so this module generates a
//! synthetic trace that preserves the three properties the published result
//! depends on:
//!
//! 1. **Diurnal rate shape** — the wiki-page request rate follows the curve
//!    of the paper's Figure 6: a trough of roughly 55 pages/s around
//!    08:00 UTC and a peak of roughly 115 pages/s around 20:00 UTC,
//! 2. **Request mix** — a majority of cheap static-asset requests
//!    (~1 ms) interleaved with CPU-intensive wiki-page requests,
//! 3. **Heavy-tailed page cost** — wiki pages trigger database/render work
//!    modelled as a log-normal service time.
//!
//! The generator is deterministic given a seed and produces a time-ordered
//! [`Request`] list spanning the configured duration.

use serde::{Deserialize, Serialize};

use crate::request::Request;
use crate::service::ServiceTime;

/// A 24-hour diurnal rate profile (requests per second as a function of the
/// time of day).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// Minimum (off-peak) rate, in requests per second.
    pub trough_rate: f64,
    /// Maximum (peak) rate, in requests per second.
    pub peak_rate: f64,
    /// Hour of day (0–24) at which the trough occurs.
    pub trough_hour: f64,
}

impl DiurnalProfile {
    /// The profile matching the wiki-page rate curve of the paper's
    /// Figure 6: ~55 pages/s at 08:00 UTC, ~115 pages/s at the evening peak.
    pub fn paper_figure6() -> Self {
        DiurnalProfile {
            trough_rate: 55.0,
            peak_rate: 115.0,
            trough_hour: 8.0,
        }
    }

    /// Request rate (per second) at `hour` of the day (0–24, wraps around).
    ///
    /// The curve is a raised cosine with its minimum at `trough_hour` and its
    /// maximum 12 hours later, which closely matches the published shape.
    pub fn rate_at_hour(&self, hour: f64) -> f64 {
        let phase = (hour - self.trough_hour) / 24.0 * std::f64::consts::TAU;
        let normalized = (1.0 - phase.cos()) / 2.0; // 0 at trough, 1 at peak
        self.trough_rate + (self.peak_rate - self.trough_rate) * normalized
    }

    /// Request rate at `t` seconds since midnight.
    pub fn rate_at_seconds(&self, t: f64) -> f64 {
        self.rate_at_hour((t / 3600.0) % 24.0)
    }

    /// Peak rate of the profile.
    pub fn peak(&self) -> f64 {
        self.peak_rate
    }
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        Self::paper_figure6()
    }
}

/// Generator of the synthetic Wikipedia replay trace.
///
/// # Example
///
/// ```
/// use srlb_workload::WikipediaWorkload;
///
/// // A 1-hour slice at 50% of peak load, as in the paper's replay.
/// let workload = WikipediaWorkload::paper().with_duration_hours(1.0);
/// let trace = workload.generate(7);
/// assert!(!trace.is_empty());
/// assert!(srlb_workload::request::is_well_formed(&trace));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WikipediaWorkload {
    /// Diurnal wiki-page rate profile.
    pub profile: DiurnalProfile,
    /// Global scaling factor applied to the profile (the paper replays the
    /// trace at 50% of the peak achievable load).
    pub load_fraction: f64,
    /// Number of static-asset requests generated per wiki-page request.
    pub static_per_wiki: f64,
    /// Service-time distribution of wiki pages.
    pub wiki_service: ServiceTime,
    /// Service-time distribution of static pages.
    pub static_service: ServiceTime,
    /// Trace duration in hours (the paper uses 24).
    pub duration_hours: f64,
    /// Width in seconds of the piecewise-constant rate intervals used by the
    /// generator.
    pub interval_seconds: f64,
}

impl WikipediaWorkload {
    /// The configuration used to reproduce the paper's Figures 6–8:
    /// 24 hours, Figure 6 rate profile at 50% load, 1.5 static requests per
    /// wiki page, 1 ms static pages, and a heavy-tailed log-normal wiki-page
    /// cost (median 250 ms, mean ≈ 320 ms).
    ///
    /// The wiki-page cost is calibrated so that the replayed evening peak
    /// (≈ 57 pages/s after the 50% scaling) drives the 12 × 2-core cluster to
    /// roughly 75–80% CPU utilisation — the paper's bootstrap picked the 50%
    /// replay fraction precisely so that the testbed was close to, but not
    /// beyond, its sustainable rate at peak ("reasonable response times,
    /// smaller than one second").
    pub fn paper() -> Self {
        WikipediaWorkload {
            profile: DiurnalProfile::paper_figure6(),
            load_fraction: 0.5,
            static_per_wiki: 1.5,
            wiki_service: ServiceTime::LogNormal {
                median_ms: 250.0,
                sigma: 0.7,
            },
            static_service: ServiceTime::Constant { ms: 1.0 },
            duration_hours: 24.0,
            interval_seconds: 10.0,
        }
    }

    /// Overrides the trace duration (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `hours` is not strictly positive and finite.
    pub fn with_duration_hours(mut self, hours: f64) -> Self {
        assert!(
            hours.is_finite() && hours > 0.0,
            "duration must be positive"
        );
        self.duration_hours = hours;
        self
    }

    /// Overrides the load fraction (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, +inf)`.
    pub fn with_load_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction > 0.0,
            "load fraction must be positive"
        );
        self.load_fraction = fraction;
        self
    }

    /// Overrides the static-to-wiki request ratio (builder style).
    pub fn with_static_per_wiki(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio >= 0.0,
            "ratio must be non-negative"
        );
        self.static_per_wiki = ratio;
        self
    }

    /// Expected number of wiki-page requests in the configured trace.
    pub fn expected_wiki_pages(&self) -> f64 {
        let mut total = 0.0;
        let mut t = 0.0;
        let end = self.duration_hours * 3600.0;
        while t < end {
            total += self.profile.rate_at_seconds(t) * self.load_fraction * self.interval_seconds;
            t += self.interval_seconds;
        }
        total
    }

    /// Generates the trace deterministically from `seed`.
    ///
    /// Wiki-page arrivals follow a non-homogeneous Poisson process with the
    /// diurnal rate; static requests are attached around each interval with
    /// the configured ratio.
    ///
    /// Compatibility shim: drains [`WikipediaWorkload::stream`], so the
    /// eager and streaming paths cannot diverge.
    pub fn generate(&self, seed: u64) -> Vec<Request> {
        crate::stream::collect(&mut self.stream(seed))
    }
}

impl Default for WikipediaWorkload {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::is_well_formed;
    use srlb_metrics::RequestClass;

    #[test]
    fn profile_matches_figure6_anchor_points() {
        let p = DiurnalProfile::paper_figure6();
        assert!((p.rate_at_hour(8.0) - 55.0).abs() < 1e-9);
        assert!((p.rate_at_hour(20.0) - 115.0).abs() < 1e-9);
        // midway points are between trough and peak
        let mid = p.rate_at_hour(14.0);
        assert!(mid > 55.0 && mid < 115.0);
        // wraps around midnight
        assert!((p.rate_at_hour(0.0) - p.rate_at_hour(24.0)).abs() < 1e-9);
        assert_eq!(p.peak(), 115.0);
    }

    #[test]
    fn rate_at_seconds_matches_hours() {
        let p = DiurnalProfile::paper_figure6();
        assert!((p.rate_at_seconds(8.0 * 3600.0) - p.rate_at_hour(8.0)).abs() < 1e-9);
        assert!((p.rate_at_seconds(30.0 * 3600.0) - p.rate_at_hour(6.0)).abs() < 1e-9);
    }

    #[test]
    fn generated_trace_is_well_formed_and_sorted() {
        let w = WikipediaWorkload::paper().with_duration_hours(0.5);
        let trace = w.generate(3);
        assert!(is_well_formed(&trace));
        assert!(!trace.is_empty());
        assert!(trace.iter().all(|r| r.arrival_seconds() <= 1800.0));
    }

    #[test]
    fn trace_contains_both_classes_in_expected_ratio() {
        let w = WikipediaWorkload::paper().with_duration_hours(1.0);
        let trace = w.generate(9);
        let wiki = trace
            .iter()
            .filter(|r| r.class == RequestClass::WikiPage)
            .count();
        let stat = trace
            .iter()
            .filter(|r| r.class == RequestClass::Static)
            .count();
        assert!(wiki > 0 && stat > 0);
        let ratio = stat as f64 / wiki as f64;
        assert!(
            (ratio - 1.5).abs() < 0.15,
            "static/wiki ratio {ratio} too far from 1.5"
        );
    }

    #[test]
    fn wiki_rate_tracks_the_diurnal_profile() {
        let w = WikipediaWorkload::paper().with_duration_hours(24.0);
        let trace = w.generate(4);
        // Count wiki pages in the hour around the trough and around the peak.
        let count_in = |from_h: f64, to_h: f64| {
            trace
                .iter()
                .filter(|r| r.class == RequestClass::WikiPage)
                .filter(|r| {
                    let h = r.arrival_seconds() / 3600.0;
                    h >= from_h && h < to_h
                })
                .count() as f64
        };
        let trough = count_in(7.5, 8.5);
        let peak = count_in(19.5, 20.5);
        let ratio = peak / trough;
        // Expected ratio 115/55 ≈ 2.09.
        assert!(
            (1.6..=2.7).contains(&ratio),
            "peak/trough ratio {ratio} outside expected band"
        );
        // Absolute rates: 50% of 55/s over 3600 s ≈ 99 000 /h at the trough.
        assert!((trough - 0.5 * 55.0 * 3600.0).abs() / (0.5 * 55.0 * 3600.0) < 0.1);
    }

    #[test]
    fn expected_wiki_pages_matches_generated_count() {
        let w = WikipediaWorkload::paper().with_duration_hours(2.0);
        let expected = w.expected_wiki_pages();
        let trace = w.generate(12);
        let wiki = trace
            .iter()
            .filter(|r| r.class == RequestClass::WikiPage)
            .count() as f64;
        assert!(
            (wiki - expected).abs() / expected < 0.05,
            "generated {wiki} vs expected {expected}"
        );
    }

    #[test]
    fn service_times_differ_by_class() {
        let w = WikipediaWorkload::paper().with_duration_hours(0.25);
        let trace = w.generate(5);
        let wiki_mean: f64 = {
            let v: Vec<f64> = trace
                .iter()
                .filter(|r| r.class == RequestClass::WikiPage)
                .map(|r| r.service_ms())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let static_max = trace
            .iter()
            .filter(|r| r.class == RequestClass::Static)
            .map(|r| r.service_ms())
            .fold(0.0f64, f64::max);
        assert!(wiki_mean > 50.0, "wiki mean {wiki_mean}");
        assert!(static_max <= 1.0 + 1e-9, "static max {static_max}");
    }

    #[test]
    fn generation_is_deterministic() {
        let w = WikipediaWorkload::paper().with_duration_hours(0.1);
        assert_eq!(w.generate(1), w.generate(1));
        assert_ne!(w.generate(1), w.generate(2));
    }

    #[test]
    fn load_fraction_scales_volume() {
        let low = WikipediaWorkload::paper()
            .with_duration_hours(0.5)
            .with_load_fraction(0.25)
            .generate(1)
            .len() as f64;
        let high = WikipediaWorkload::paper()
            .with_duration_hours(0.5)
            .with_load_fraction(0.5)
            .generate(1)
            .len() as f64;
        let ratio = high / low;
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_duration_panics() {
        WikipediaWorkload::paper().with_duration_hours(0.0);
    }
}
