//! The streaming [`Workload`] trait: requests pulled on demand.
//!
//! The original experiment driver materialised every workload as a
//! `Vec<Request>` before the simulation started, which caps the trace
//! length at available memory (a 24-hour Wikipedia replay is ~10 million
//! requests) and makes "generate" a mandatory up-front cost.  This module
//! turns workloads into *streams*: the client node pulls one request at a
//! time with [`Workload::next_request`], and generators hold only O(1)
//! state (Poisson) or one rate interval (Wikipedia).
//!
//! Determinism is preserved exactly: for a given seed, the stream yields
//! the byte-identical request sequence that the eager `generate()` path
//! produced — `generate()` itself is now a compatibility shim that drains
//! the stream (`crates/workload/tests/proptest_stream.rs` pins the
//! equivalence against independent reference implementations).
//!
//! Implementors:
//!
//! * [`PoissonStream`] — [`PoissonWorkload::stream`](crate::PoissonWorkload::stream),
//! * [`WikipediaStream`] — [`WikipediaWorkload::stream`](crate::WikipediaWorkload::stream),
//! * [`TraceStream`] — [`Trace::into_stream`](crate::Trace::into_stream) /
//!   [`requests_into_stream`].

use std::fmt;

use rand::Rng;
use rand_distr::{Distribution, Exp};
use srlb_metrics::RequestClass;
use srlb_sim::{SimRng, SimTime};

use crate::poisson::{poisson_count, PoissonWorkload};
use crate::request::Request;
use crate::service::ServiceTime;
use crate::trace::Trace;
use crate::wikipedia::WikipediaWorkload;

/// A deterministic, seeded source of time-ordered requests, pulled on
/// demand.
///
/// The contract mirrors the eager generators:
///
/// * requests come out sorted by arrival time with strictly increasing ids,
/// * [`Workload::remaining`] is an **exact** size hint: it returns the
///   number of requests the stream will still yield (experiment drivers use
///   it to size address plans and event budgets before the run starts),
/// * the sequence is a pure function of the generator configuration and the
///   seed it was created with.
pub trait Workload: fmt::Debug + Send {
    /// Pulls the next request, or `None` when the workload is exhausted.
    fn next_request(&mut self) -> Option<Request>;

    /// Exact number of requests this stream will still yield.
    fn remaining(&self) -> usize;
}

/// Boxed convenience alias used by experiment drivers.
pub type BoxedWorkload = Box<dyn Workload>;

/// Drains a stream into the eager `Vec<Request>` representation (the
/// compatibility path behind `generate()`).
pub fn collect(stream: &mut dyn Workload) -> Vec<Request> {
    let mut out = Vec::with_capacity(stream.remaining());
    while let Some(request) = stream.next_request() {
        out.push(request);
    }
    out
}

/// Wraps an already-materialised request list as a stream.
pub fn requests_into_stream(requests: Vec<Request>) -> TraceStream {
    TraceStream {
        requests: requests.into_iter(),
    }
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

/// Streaming state of a [`PoissonWorkload`]: O(1) memory, one arrival and
/// one service draw per pulled request.
#[derive(Debug)]
pub struct PoissonStream {
    arrival_rng: SimRng,
    service_rng: SimRng,
    inter_arrival: Exp,
    service: ServiceTime,
    class: RequestClass,
    now_seconds: f64,
    next_id: u64,
    total: u64,
}

impl PoissonWorkload {
    /// Opens the workload as a stream seeded with `seed`.  Draining the
    /// stream yields exactly [`PoissonWorkload::generate`]`(seed)`.
    pub fn stream(&self, seed: u64) -> PoissonStream {
        PoissonStream {
            arrival_rng: SimRng::new(seed).fork_named("poisson-arrivals"),
            service_rng: SimRng::new(seed).fork_named("poisson-service"),
            inter_arrival: Exp::new(self.rate_per_second)
                .expect("positive rate validated at construction"),
            service: self.service,
            class: self.class,
            now_seconds: 0.0,
            next_id: 0,
            total: self.queries as u64,
        }
    }
}

impl Workload for PoissonStream {
    fn next_request(&mut self) -> Option<Request> {
        if self.next_id >= self.total {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.now_seconds += self.inter_arrival.sample(&mut self.arrival_rng);
        Some(Request::new(
            id,
            SimTime::from_secs_f64(self.now_seconds),
            self.class,
            self.service.sample(&mut self.service_rng),
        ))
    }

    fn remaining(&self) -> usize {
        (self.total - self.next_id) as usize
    }
}

// ---------------------------------------------------------------------------
// Wikipedia
// ---------------------------------------------------------------------------

/// Streaming state of a [`WikipediaWorkload`]: holds at most one rate
/// interval's arrivals (tens to hundreds of entries) instead of the whole
/// day.
///
/// Per-interval generation is order-equivalent to the eager path's global
/// sort: every arrival of interval `i` is strictly before every arrival of
/// interval `i + 1`, and the per-interval stable sort preserves the same
/// tie order the global stable sort does.
#[derive(Debug)]
pub struct WikipediaStream {
    config: WikipediaWorkload,
    count_rng: SimRng,
    place_rng: SimRng,
    service_rng: SimRng,
    end_seconds: f64,
    /// Start of the next interval still to be drawn.
    t: f64,
    /// The current interval's `(arrival, class)` pairs, sorted by arrival.
    buffer: Vec<(f64, RequestClass)>,
    cursor: usize,
    next_id: u64,
    remaining: usize,
}

impl WikipediaWorkload {
    /// Opens the workload as a stream seeded with `seed`.  Draining the
    /// stream yields exactly [`WikipediaWorkload::generate`]`(seed)`.
    ///
    /// Construction performs one cheap counting pass (count and placement
    /// draws only, no sorting, no allocation proportional to the trace) so
    /// [`Workload::remaining`] is exact from the start.
    pub fn stream(&self, seed: u64) -> WikipediaStream {
        let count_rng = SimRng::new(seed).fork_named("wiki-counts");
        let place_rng = SimRng::new(seed).fork_named("wiki-placement");
        let service_rng = SimRng::new(seed).fork_named("wiki-service");
        let end_seconds = self.duration_hours * 3600.0;

        // Counting pass on clones: replicates the exact draw sequence the
        // streaming pass will consume, including the `at < end` filter.
        let mut counts = count_rng.clone();
        let mut places = place_rng.clone();
        let mut remaining = 0usize;
        let mut t = 0.0;
        while t < end_seconds {
            let (wiki_count, static_count) = interval_counts(self, t, &mut counts);
            for _ in 0..wiki_count + static_count {
                if t + places.gen::<f64>() * self.interval_seconds < end_seconds {
                    remaining += 1;
                }
            }
            t += self.interval_seconds;
        }

        WikipediaStream {
            config: self.clone(),
            count_rng,
            place_rng,
            service_rng,
            end_seconds,
            t: 0.0,
            buffer: Vec::new(),
            cursor: 0,
            next_id: 0,
            remaining,
        }
    }
}

/// Draws the wiki and static arrival counts of the interval starting at
/// `t`, in the fixed order both passes share.
fn interval_counts(config: &WikipediaWorkload, t: f64, rng: &mut SimRng) -> (u64, u64) {
    let wiki_mean =
        config.profile.rate_at_seconds(t) * config.load_fraction * config.interval_seconds;
    let wiki_count = poisson_count(rng, wiki_mean);
    let static_count = poisson_count(rng, wiki_mean * config.static_per_wiki);
    (wiki_count, static_count)
}

impl WikipediaStream {
    /// Refills the interval buffer from the next non-empty interval.
    fn refill(&mut self) {
        self.buffer.clear();
        self.cursor = 0;
        while self.t < self.end_seconds && self.buffer.is_empty() {
            let t = self.t;
            let (wiki_count, static_count) = interval_counts(&self.config, t, &mut self.count_rng);
            for (count, class) in [
                (wiki_count, RequestClass::WikiPage),
                (static_count, RequestClass::Static),
            ] {
                for _ in 0..count {
                    let at = t + self.place_rng.gen::<f64>() * self.config.interval_seconds;
                    if at < self.end_seconds {
                        self.buffer.push((at, class));
                    }
                }
            }
            self.t += self.config.interval_seconds;
        }
        self.buffer
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite arrival times"));
    }
}

impl Workload for WikipediaStream {
    fn next_request(&mut self) -> Option<Request> {
        if self.cursor >= self.buffer.len() {
            self.refill();
            if self.buffer.is_empty() {
                return None;
            }
        }
        let (at, class) = self.buffer[self.cursor];
        self.cursor += 1;
        let service = match class {
            RequestClass::WikiPage => self.config.wiki_service.sample(&mut self.service_rng),
            _ => self.config.static_service.sample(&mut self.service_rng),
        };
        let id = self.next_id;
        self.next_id += 1;
        self.remaining -= 1;
        Some(Request::new(id, SimTime::from_secs_f64(at), class, service))
    }

    fn remaining(&self) -> usize {
        self.remaining
    }
}

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

/// Streaming adapter over a materialised request list.
#[derive(Debug)]
pub struct TraceStream {
    requests: std::vec::IntoIter<Request>,
}

impl Trace {
    /// Consumes the trace into a stream over its requests.
    pub fn into_stream(self) -> TraceStream {
        requests_into_stream(self.requests)
    }
}

impl Workload for TraceStream {
    fn next_request(&mut self) -> Option<Request> {
        self.requests.next()
    }

    fn remaining(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_stream_matches_generate() {
        let w = PoissonWorkload::paper(0.7, 120.0).with_queries(2_000);
        for seed in [1, 7, 42] {
            assert_eq!(collect(&mut w.stream(seed)), w.generate(seed));
        }
    }

    #[test]
    fn wikipedia_stream_matches_generate() {
        let w = WikipediaWorkload::paper().with_duration_hours(0.1);
        for seed in [1, 9] {
            assert_eq!(collect(&mut w.stream(seed)), w.generate(seed));
        }
    }

    #[test]
    fn remaining_is_exact_throughout() {
        let w = WikipediaWorkload::paper().with_duration_hours(0.02);
        let mut stream = w.stream(3);
        let total = stream.remaining();
        assert!(total > 0);
        let mut pulled = 0;
        while stream.next_request().is_some() {
            pulled += 1;
            assert_eq!(stream.remaining(), total - pulled);
        }
        assert_eq!(pulled, total);
        assert_eq!(stream.remaining(), 0);
        assert!(stream.next_request().is_none());
    }

    #[test]
    fn poisson_remaining_counts_down() {
        let w = PoissonWorkload::new(10.0, 5, ServiceTime::Constant { ms: 1.0 });
        let mut stream = w.stream(1);
        assert_eq!(stream.remaining(), 5);
        stream.next_request();
        assert_eq!(stream.remaining(), 4);
        assert_eq!(collect(&mut stream).len(), 4);
    }

    #[test]
    fn trace_stream_replays_requests() {
        let requests =
            PoissonWorkload::new(50.0, 20, ServiceTime::Constant { ms: 2.0 }).generate(4);
        let trace = Trace::new("t", 4, requests.clone());
        let mut stream = trace.into_stream();
        assert_eq!(stream.remaining(), 20);
        assert_eq!(collect(&mut stream), requests);
    }

    #[test]
    fn streams_are_time_ordered_with_increasing_ids() {
        let w = WikipediaWorkload::paper().with_duration_hours(0.05);
        let requests = collect(&mut w.stream(11));
        assert!(crate::request::is_well_formed(&requests));
    }
}
