//! Service-time distributions for generated requests.

use rand::Rng;
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};
use srlb_sim::SimDuration;

/// A distribution of per-request CPU service demand.
///
/// The Poisson experiments of the paper use `Exponential { mean_ms: 100.0 }`
/// (a PHP busy loop with exponentially distributed duration); the synthetic
/// Wikipedia workload uses a log-normal for wiki pages (heavy-tailed database
/// and rendering work) and a small constant for static pages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceTime {
    /// A fixed service time.
    Constant {
        /// Service time in milliseconds.
        ms: f64,
    },
    /// Exponentially distributed service time.
    Exponential {
        /// Mean service time in milliseconds.
        mean_ms: f64,
    },
    /// Log-normally distributed service time (heavy tail).
    LogNormal {
        /// Median service time in milliseconds (`exp(mu)`).
        median_ms: f64,
        /// Shape parameter sigma of the underlying normal.
        sigma: f64,
    },
    /// Uniformly distributed service time.
    Uniform {
        /// Lower bound in milliseconds.
        min_ms: f64,
        /// Upper bound in milliseconds.
        max_ms: f64,
    },
}

impl ServiceTime {
    /// The paper's Poisson-workload service time: exponential with a 100 ms
    /// mean.
    pub fn paper_poisson() -> Self {
        ServiceTime::Exponential { mean_ms: 100.0 }
    }

    /// Mean of the distribution in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        match *self {
            ServiceTime::Constant { ms } => ms,
            ServiceTime::Exponential { mean_ms } => mean_ms,
            ServiceTime::LogNormal { median_ms, sigma } => median_ms * (sigma * sigma / 2.0).exp(),
            ServiceTime::Uniform { min_ms, max_ms } => (min_ms + max_ms) / 2.0,
        }
    }

    /// Draws one service time.
    ///
    /// # Panics
    ///
    /// Panics if the distribution parameters are invalid (non-positive mean,
    /// `min > max`, …); generators validate their configuration up front.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let ms = match *self {
            ServiceTime::Constant { ms } => ms,
            ServiceTime::Exponential { mean_ms } => {
                assert!(mean_ms > 0.0, "exponential mean must be positive");
                let exp = Exp::new(1.0 / mean_ms).expect("valid exponential rate");
                exp.sample(rng)
            }
            ServiceTime::LogNormal { median_ms, sigma } => {
                assert!(
                    median_ms > 0.0 && sigma >= 0.0,
                    "log-normal parameters must be positive"
                );
                let dist = LogNormal::new(median_ms.ln(), sigma).expect("valid log-normal");
                dist.sample(rng)
            }
            ServiceTime::Uniform { min_ms, max_ms } => {
                assert!(
                    min_ms <= max_ms && min_ms >= 0.0,
                    "uniform bounds must satisfy 0 <= min <= max"
                );
                if min_ms == max_ms {
                    min_ms
                } else {
                    rng.gen_range(min_ms..max_ms)
                }
            }
        };
        SimDuration::from_secs_f64((ms.max(0.0)) / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srlb_sim::SimRng;

    fn sample_mean(dist: ServiceTime, n: usize) -> f64 {
        let mut rng = SimRng::new(42);
        (0..n)
            .map(|_| dist.sample(&mut rng).as_millis_f64())
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::new(1);
        let d = ServiceTime::Constant { ms: 5.0 };
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), SimDuration::from_millis(5));
        }
        assert_eq!(d.mean_ms(), 5.0);
    }

    #[test]
    fn exponential_matches_mean() {
        let d = ServiceTime::paper_poisson();
        assert_eq!(d.mean_ms(), 100.0);
        let m = sample_mean(d, 20_000);
        assert!((m - 100.0).abs() < 5.0, "empirical mean {m}");
    }

    #[test]
    fn lognormal_mean_formula() {
        let d = ServiceTime::LogNormal {
            median_ms: 100.0,
            sigma: 0.5,
        };
        let expected = 100.0 * (0.125f64).exp();
        assert!((d.mean_ms() - expected).abs() < 1e-9);
        let m = sample_mean(d, 50_000);
        assert!((m - expected).abs() / expected < 0.05, "empirical mean {m}");
    }

    #[test]
    fn uniform_bounds_are_respected() {
        let d = ServiceTime::Uniform {
            min_ms: 2.0,
            max_ms: 4.0,
        };
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = d.sample(&mut rng).as_millis_f64();
            assert!((2.0..=4.0).contains(&v));
        }
        assert_eq!(d.mean_ms(), 3.0);
        let degenerate = ServiceTime::Uniform {
            min_ms: 7.0,
            max_ms: 7.0,
        };
        assert_eq!(degenerate.sample(&mut rng), SimDuration::from_millis(7));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = ServiceTime::paper_poisson();
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_exponential_panics() {
        let mut rng = SimRng::new(1);
        ServiceTime::Exponential { mean_ms: 0.0 }.sample(&mut rng);
    }

    #[test]
    fn serde_roundtrip() {
        let d = ServiceTime::LogNormal {
            median_ms: 80.0,
            sigma: 0.7,
        };
        let json = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<ServiceTime>(&json).unwrap(), d);
    }
}
