//! The Poisson workload of the paper's Section V.

use rand::Rng;
use serde::{Deserialize, Serialize};
use srlb_metrics::RequestClass;
use srlb_sim::{SimRng, SimTime};

use crate::request::Request;
use crate::service::ServiceTime;

/// A Poisson stream of queries with independent, identically distributed
/// service demands.
///
/// The paper injects 20 000 queries at 24 different normalised rates
/// `ρ = λ/λ₀`, with exponential service times of mean 100 ms.
///
/// # Example
///
/// ```
/// use srlb_workload::PoissonWorkload;
///
/// let requests = PoissonWorkload::paper(0.5, 100.0).with_queries(100).generate(7);
/// assert_eq!(requests.len(), 100);
/// assert!(srlb_workload::request::is_well_formed(&requests));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonWorkload {
    /// Query arrival rate in queries per second.
    pub rate_per_second: f64,
    /// Number of queries to generate.
    pub queries: usize,
    /// Service-time distribution.
    pub service: ServiceTime,
    /// Class tag attached to generated requests.
    pub class: RequestClass,
}

impl PoissonWorkload {
    /// Creates a workload with an explicit arrival rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_second` is not strictly positive and finite.
    pub fn new(rate_per_second: f64, queries: usize, service: ServiceTime) -> Self {
        assert!(
            rate_per_second.is_finite() && rate_per_second > 0.0,
            "arrival rate must be positive"
        );
        PoissonWorkload {
            rate_per_second,
            queries,
            service,
            class: RequestClass::Synthetic,
        }
    }

    /// The paper's configuration: normalised rate `rho` against a maximum
    /// sustainable rate `lambda0` (queries per second), 20 000 queries,
    /// exponential service with a 100 ms mean.
    ///
    /// # Panics
    ///
    /// Panics if `rho` or `lambda0` are not strictly positive and finite.
    pub fn paper(rho: f64, lambda0: f64) -> Self {
        assert!(rho.is_finite() && rho > 0.0, "rho must be positive");
        assert!(
            lambda0.is_finite() && lambda0 > 0.0,
            "lambda0 must be positive"
        );
        PoissonWorkload {
            rate_per_second: rho * lambda0,
            queries: 20_000,
            service: ServiceTime::paper_poisson(),
            class: RequestClass::Synthetic,
        }
    }

    /// Overrides the number of queries (builder style).
    pub fn with_queries(mut self, queries: usize) -> Self {
        self.queries = queries;
        self
    }

    /// Overrides the service-time distribution (builder style).
    pub fn with_service(mut self, service: ServiceTime) -> Self {
        self.service = service;
        self
    }

    /// Expected duration of the generated trace in seconds.
    pub fn expected_duration_seconds(&self) -> f64 {
        self.queries as f64 / self.rate_per_second
    }

    /// Generates the request trace deterministically from `seed`.
    ///
    /// Compatibility shim: drains [`PoissonWorkload::stream`], so the eager
    /// and streaming paths cannot diverge.
    pub fn generate(&self, seed: u64) -> Vec<Request> {
        crate::stream::collect(&mut self.stream(seed))
    }

    /// Generates a trace whose arrivals are deterministic (evenly spaced at
    /// the configured rate) but whose service times are still random; used
    /// by tests that need exact arrival control.
    pub fn generate_uniform_arrivals(&self, seed: u64) -> Vec<Request> {
        let mut service_rng = SimRng::new(seed).fork_named("poisson-service");
        let gap = 1.0 / self.rate_per_second;
        (0..self.queries as u64)
            .map(|id| {
                Request::new(
                    id,
                    SimTime::from_secs_f64(gap * (id + 1) as f64),
                    self.class,
                    self.service.sample(&mut service_rng),
                )
            })
            .collect()
    }
}

/// Draws a Poisson-distributed count with the given mean (used by the
/// Wikipedia generator for per-interval arrival counts).
pub(crate) fn poisson_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    // Knuth's algorithm is fine for the small per-interval means we use.
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
    // Normal approximation for larger means.
    let normal: f64 = {
        // Box-Muller from two uniforms.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    (mean + mean.sqrt() * normal).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::is_well_formed;

    #[test]
    fn generates_requested_number_of_queries() {
        let w = PoissonWorkload::paper(0.88, 120.0).with_queries(5_000);
        let trace = w.generate(1);
        assert_eq!(trace.len(), 5_000);
        assert!(is_well_formed(&trace));
    }

    #[test]
    fn empirical_rate_matches_configuration() {
        let w = PoissonWorkload::new(200.0, 20_000, ServiceTime::Constant { ms: 1.0 });
        let trace = w.generate(3);
        let duration = trace.last().unwrap().arrival_seconds();
        let rate = trace.len() as f64 / duration;
        assert!(
            (rate - 200.0).abs() / 200.0 < 0.05,
            "empirical rate {rate} too far from 200"
        );
        assert!((w.expected_duration_seconds() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn service_times_follow_configured_distribution() {
        let w = PoissonWorkload::paper(0.5, 100.0).with_queries(20_000);
        let trace = w.generate(5);
        let mean_ms: f64 = trace.iter().map(|r| r.service_ms()).sum::<f64>() / trace.len() as f64;
        assert!((mean_ms - 100.0).abs() < 5.0, "mean service {mean_ms}");
    }

    #[test]
    fn generation_is_deterministic() {
        let w = PoissonWorkload::paper(0.7, 100.0).with_queries(500);
        assert_eq!(w.generate(11), w.generate(11));
        assert_ne!(w.generate(11), w.generate(12));
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let w = PoissonWorkload::new(10.0, 5, ServiceTime::Constant { ms: 1.0 });
        let trace = w.generate_uniform_arrivals(1);
        for (i, r) in trace.iter().enumerate() {
            assert!((r.arrival_seconds() - 0.1 * (i + 1) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn builder_overrides() {
        let w = PoissonWorkload::paper(0.5, 100.0)
            .with_queries(10)
            .with_service(ServiceTime::Constant { ms: 2.0 });
        let trace = w.generate(1);
        assert_eq!(trace.len(), 10);
        assert!(trace.iter().all(|r| (r.service_ms() - 2.0).abs() < 1e-9));
    }

    #[test]
    fn poisson_count_mean_is_close() {
        let mut rng = SimRng::new(1);
        for mean in [0.5, 3.0, 10.0, 50.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson_count(&mut rng, mean)).sum();
            let empirical = total as f64 / n as f64;
            assert!(
                (empirical - mean).abs() / mean < 0.1,
                "mean {mean}: empirical {empirical}"
            );
        }
        assert_eq!(poisson_count(&mut rng, 0.0), 0);
        assert_eq!(poisson_count(&mut rng, -1.0), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        PoissonWorkload::new(0.0, 1, ServiceTime::Constant { ms: 1.0 });
    }

    #[test]
    #[should_panic(expected = "rho must be positive")]
    fn invalid_rho_panics() {
        PoissonWorkload::paper(0.0, 100.0);
    }
}
