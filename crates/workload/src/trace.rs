//! Trace serialisation: saving and replaying generated workloads.
//!
//! The paper's traffic generator replays a MediaWiki access trace "with
//! millisecond granularity"; this module provides the equivalent
//! record/replay facility for synthetic traces so that the exact same trace
//! can be replayed against different load-balancing policies (as the paper
//! does when comparing RR and SR4 on the same 24-hour trace).

use std::io::{Read, Write};

use serde::{Deserialize, Serialize};
use srlb_metrics::RequestClass;

use crate::request::{is_well_formed, Request};

/// A serialisable workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Free-form description of how the trace was generated.
    pub description: String,
    /// Seed used to generate the trace (for provenance).
    pub seed: u64,
    /// The requests, sorted by arrival time.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Wraps a request list into a trace.
    ///
    /// # Panics
    ///
    /// Panics if the requests are not sorted by arrival time with strictly
    /// increasing ids (all generators in this crate produce well-formed
    /// traces; hand-built traces must uphold the same invariant).
    pub fn new(description: impl Into<String>, seed: u64, requests: Vec<Request>) -> Self {
        assert!(
            is_well_formed(&requests),
            "trace requests must be sorted by arrival with increasing ids"
        );
        Trace {
            description: description.into(),
            seed,
            requests,
        }
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Duration of the trace in seconds (arrival of the last request).
    pub fn duration_seconds(&self) -> f64 {
        self.requests
            .last()
            .map(|r| r.arrival_seconds())
            .unwrap_or(0.0)
    }

    /// Number of requests of a given class.
    pub fn count_class(&self, class: RequestClass) -> usize {
        self.requests.iter().filter(|r| r.class == class).count()
    }

    /// Mean arrival rate over the trace, in requests per second.
    pub fn mean_rate_per_second(&self) -> f64 {
        let d = self.duration_seconds();
        if d == 0.0 {
            0.0
        } else {
            self.len() as f64 / d
        }
    }

    /// Serialises the trace as JSON to `writer`.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialisation error from `serde_json`.
    pub fn write_json<W: Write>(&self, writer: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer(writer, self)
    }

    /// Reads a trace serialised with [`Trace::write_json`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialisation error from `serde_json`.
    pub fn read_json<R: Read>(reader: R) -> Result<Self, serde_json::Error> {
        serde_json::from_reader(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::PoissonWorkload;
    use crate::service::ServiceTime;
    use crate::wikipedia::WikipediaWorkload;

    #[test]
    fn wraps_generated_poisson_trace() {
        let requests =
            PoissonWorkload::new(100.0, 200, ServiceTime::Constant { ms: 1.0 }).generate(7);
        let trace = Trace::new("poisson test", 7, requests);
        assert_eq!(trace.len(), 200);
        assert!(!trace.is_empty());
        assert!(trace.duration_seconds() > 0.0);
        assert!(trace.mean_rate_per_second() > 50.0);
        assert_eq!(trace.count_class(RequestClass::Synthetic), 200);
        assert_eq!(trace.count_class(RequestClass::WikiPage), 0);
    }

    #[test]
    fn json_roundtrip_preserves_trace() {
        let requests = WikipediaWorkload::paper()
            .with_duration_hours(0.05)
            .generate(3);
        let trace = Trace::new("wiki slice", 3, requests);
        let mut buf = Vec::new();
        trace.write_json(&mut buf).unwrap();
        let back = Trace::read_json(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_statistics() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.duration_seconds(), 0.0);
        assert_eq!(trace.mean_rate_per_second(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_requests_are_rejected() {
        use srlb_sim::{SimDuration, SimTime};
        let r1 = Request::new(
            0,
            SimTime::from_secs_f64(2.0),
            RequestClass::Synthetic,
            SimDuration::from_millis(1),
        );
        let r2 = Request::new(
            1,
            SimTime::from_secs_f64(1.0),
            RequestClass::Synthetic,
            SimDuration::from_millis(1),
        );
        Trace::new("bad", 0, vec![r1, r2]);
    }
}
