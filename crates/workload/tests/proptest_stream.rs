//! Property tests: the streaming [`Workload`] path yields byte-identical
//! traces to the legacy eager generation path.
//!
//! `generate()` is now a shim that drains the stream, so these tests pin
//! the equivalence against *independent reference implementations* — the
//! eager generators as they existed before the streaming refactor
//! (generate-everything, sort globally, then sample service times in
//! sorted order).  If the streaming generators ever reorder an RNG draw or
//! mis-handle an interval boundary, these properties fail.

use proptest::prelude::*;

use rand::Rng;
use rand_distr::{Distribution, Exp};
use srlb_metrics::RequestClass;
use srlb_sim::{SimRng, SimTime};
use srlb_workload::stream::collect;
use srlb_workload::{PoissonWorkload, Request, ServiceTime, WikipediaWorkload, Workload};

/// The pre-refactor eager Poisson generator, kept verbatim as a model.
fn reference_poisson(w: &PoissonWorkload, seed: u64) -> Vec<Request> {
    let mut arrival_rng = SimRng::new(seed).fork_named("poisson-arrivals");
    let mut service_rng = SimRng::new(seed).fork_named("poisson-service");
    let inter_arrival = Exp::new(w.rate_per_second).expect("positive rate");
    let mut now = 0.0f64;
    (0..w.queries as u64)
        .map(|id| {
            now += inter_arrival.sample(&mut arrival_rng);
            Request::new(
                id,
                SimTime::from_secs_f64(now),
                w.class,
                w.service.sample(&mut service_rng),
            )
        })
        .collect()
}

/// Re-implementation of the vendored-`rand_distr`-free Poisson counter the
/// generators share; mirrors `srlb_workload::poisson::poisson_count`.
fn reference_poisson_count<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
    let normal: f64 = {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    (mean + mean.sqrt() * normal).round().max(0.0) as u64
}

/// The pre-refactor eager Wikipedia generator: batch every interval's
/// arrivals, sort the whole day globally, then sample service times in
/// sorted order.
fn reference_wikipedia(w: &WikipediaWorkload, seed: u64) -> Vec<Request> {
    let mut count_rng = SimRng::new(seed).fork_named("wiki-counts");
    let mut place_rng = SimRng::new(seed).fork_named("wiki-placement");
    let mut service_rng = SimRng::new(seed).fork_named("wiki-service");

    let end_seconds = w.duration_hours * 3600.0;
    let mut arrivals: Vec<(f64, RequestClass)> = Vec::new();

    let mut t = 0.0;
    while t < end_seconds {
        let wiki_rate = w.profile.rate_at_seconds(t) * w.load_fraction;
        let wiki_mean = wiki_rate * w.interval_seconds;
        let wiki_count = reference_poisson_count(&mut count_rng, wiki_mean);
        let static_mean = wiki_mean * w.static_per_wiki;
        let static_count = reference_poisson_count(&mut count_rng, static_mean);

        for _ in 0..wiki_count {
            let at = t + place_rng.gen::<f64>() * w.interval_seconds;
            if at < end_seconds {
                arrivals.push((at, RequestClass::WikiPage));
            }
        }
        for _ in 0..static_count {
            let at = t + place_rng.gen::<f64>() * w.interval_seconds;
            if at < end_seconds {
                arrivals.push((at, RequestClass::Static));
            }
        }
        t += w.interval_seconds;
    }

    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite arrival times"));

    arrivals
        .into_iter()
        .enumerate()
        .map(|(id, (at, class))| {
            let service = match class {
                RequestClass::WikiPage => w.wiki_service.sample(&mut service_rng),
                _ => w.static_service.sample(&mut service_rng),
            };
            Request::new(id as u64, SimTime::from_secs_f64(at), class, service)
        })
        .collect()
}

proptest! {
    #[test]
    fn poisson_stream_is_byte_identical_to_legacy(
        seed in 0u64..10_000,
        rate in 1.0f64..400.0,
        queries in 1usize..2_000,
        mean_ms in 1.0f64..200.0,
    ) {
        let w = PoissonWorkload::new(rate, queries, ServiceTime::Exponential { mean_ms });
        let reference = reference_poisson(&w, seed);
        let streamed = collect(&mut w.stream(seed));
        prop_assert_eq!(&streamed, &reference);
        prop_assert_eq!(&w.generate(seed), &reference);
    }

    #[test]
    fn wikipedia_stream_is_byte_identical_to_legacy(
        seed in 0u64..10_000,
        // Durations chosen to exercise both exact-multiple and ragged
        // final intervals (interval_seconds stays at the paper's 10 s).
        duration_s in 15.0f64..400.0,
        load in 0.05f64..1.0,
        static_ratio in 0.0f64..3.0,
    ) {
        let w = WikipediaWorkload::paper()
            .with_duration_hours(duration_s / 3600.0)
            .with_load_fraction(load)
            .with_static_per_wiki(static_ratio);
        let reference = reference_wikipedia(&w, seed);
        let streamed = collect(&mut w.stream(seed));
        prop_assert_eq!(&streamed, &reference);
        prop_assert_eq!(&w.generate(seed), &reference);
    }

    #[test]
    fn wikipedia_remaining_hint_is_exact(
        seed in 0u64..10_000,
        duration_s in 15.0f64..200.0,
    ) {
        let w = WikipediaWorkload::paper().with_duration_hours(duration_s / 3600.0);
        let mut stream = w.stream(seed);
        let hinted = stream.remaining();
        let actual = collect(&mut stream).len();
        prop_assert_eq!(hinted, actual);
    }
}
