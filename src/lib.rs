//! # SRLB — the power of choices in load balancing with Segment Routing
//!
//! This crate is the facade of the SRLB workspace, a from-scratch Rust
//! reproduction of *SRLB: The Power of Choices in Load Balancing with Segment
//! Routing* (Desmouceaux et al., IEEE ICDCS 2017).
//!
//! SRLB is a Layer-4 load balancer that remains application-protocol
//! agnostic while making application-state-aware dispatching decisions.  The
//! mechanism is **Service Hunting**: new connections are sent through a chain
//! of candidate servers encoded in an IPv6 Segment Routing header; each
//! candidate locally decides to accept or pass on the connection based on its
//! own real-time load (busy worker threads).
//!
//! The workspace is organised in focused crates, all re-exported here:
//!
//! * [`net`] — IPv6 / SRv6 / TCP packet model ([`srlb_net`]),
//! * [`sim`] — deterministic discrete-event network simulator ([`srlb_sim`]),
//! * [`metrics`] — CDFs, deciles, Jain fairness, EWMA, time bins
//!   ([`srlb_metrics`]),
//! * [`workload`] — Poisson and Wikipedia-like workload generators
//!   ([`srlb_workload`]),
//! * [`server`] — backend server model: worker pool, backlog, scoreboard,
//!   acceptance policies, SR-aware virtual router ([`srlb_server`]),
//! * [`core`] — the load balancer itself: dispatchers, flow table, testbed
//!   and experiment orchestration ([`srlb_core`]),
//! * [`scenario`] — dynamic-cluster scenario engine: timed server churn,
//!   load-balancer failover with in-band flow-table reconstruction,
//!   capacity re-provisioning and multi-VIP clusters, with disruption
//!   metrics ([`srlb_scenario`]).
//!
//! ## Quickstart
//!
//! ```
//! use srlb::core::experiment::{ExperimentConfig, PolicyKind};
//!
//! // A small Poisson experiment: 12 servers, SR4 policy, load factor 0.7.
//! let config = ExperimentConfig::poisson_quick(0.7, PolicyKind::Static { threshold: 4 })
//!     .with_queries(500)
//!     .with_seed(7);
//! let result = config.run().expect("experiment runs");
//! assert!(result.completed > 0);
//! println!("mean response time: {:.1} ms", result.response_times.mean());
//! ```

pub use srlb_core as core;
pub use srlb_metrics as metrics;
pub use srlb_net as net;
pub use srlb_scenario as scenario;
pub use srlb_server as server;
pub use srlb_sim as sim;
pub use srlb_workload as workload;

/// The crate version of the facade, useful for experiment provenance records.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
